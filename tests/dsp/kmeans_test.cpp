#include "dsp/kmeans.h"

#include <gtest/gtest.h>

#include "crypto/chacha20.h"

namespace medsen::dsp {
namespace {

std::vector<FeatureVector> three_blobs(std::size_t per_blob,
                                       std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  std::vector<FeatureVector> points;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto& c : centers)
    for (std::size_t i = 0; i < per_blob; ++i)
      points.push_back({c[0] + rng.normal(0.0, 0.5),
                        c[1] + rng.normal(0.0, 0.5)});
  return points;
}

TEST(KMeans, SeparatesWellSeparatedBlobs) {
  const auto points = three_blobs(50, 1);
  const auto result = kmeans(points, 3);
  // All points of one blob must share a cluster id.
  for (int blob = 0; blob < 3; ++blob) {
    const std::size_t expected = result.assignment[blob * 50];
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(result.assignment[blob * 50 + i], expected) << blob;
  }
}

TEST(KMeans, InertiaSmallForTightBlobs) {
  const auto points = three_blobs(50, 2);
  const auto result = kmeans(points, 3);
  // 150 points with sigma 0.5 in 2D: E[inertia] ~ n * 2 * sigma^2 = 75.
  EXPECT_LT(result.inertia, 150.0);
}

TEST(KMeans, KOneYieldsCentroidAtMean) {
  const std::vector<FeatureVector> points = {{0.0}, {2.0}, {4.0}};
  const auto result = kmeans(points, 1);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
}

TEST(KMeans, KZeroThrows) {
  const std::vector<FeatureVector> points = {{1.0}};
  EXPECT_THROW(kmeans(points, 0), std::invalid_argument);
}

TEST(KMeans, FewerPointsThanClustersThrows) {
  const std::vector<FeatureVector> points = {{1.0}};
  EXPECT_THROW(kmeans(points, 2), std::invalid_argument);
}

TEST(KMeans, InconsistentDimensionThrows) {
  const std::vector<FeatureVector> points = {{1.0}, {1.0, 2.0}};
  EXPECT_THROW(kmeans(points, 1), std::invalid_argument);
}

TEST(KMeans, DeterministicForFixedSeed) {
  const auto points = three_blobs(30, 3);
  KMeansConfig config;
  config.seed = 99;
  const auto a = kmeans(points, 3, config);
  const auto b = kmeans(points, 3, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, DuplicatePointsHandled) {
  const std::vector<FeatureVector> points(10, FeatureVector{5.0, 5.0});
  const auto result = kmeans(points, 2);
  EXPECT_EQ(result.assignment.size(), 10u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(SquaredDistance, Basic) {
  EXPECT_DOUBLE_EQ(squared_distance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(squared_distance({1.0}, {1.0}), 0.0);
}

}  // namespace
}  // namespace medsen::dsp
