#include "dsp/detrend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/stats.h"

namespace medsen::dsp {
namespace {

TEST(Detrend, FlatSignalStaysUnit) {
  std::vector<double> xs(5000, 2.5);
  const auto out = detrend(xs);
  for (double v : out) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Detrend, RemovesLinearDrift) {
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) xs.push_back(1.0 + 1e-4 * i);
  const auto out = detrend(xs);
  EXPECT_NEAR(util::mean(out), 1.0, 1e-4);
  EXPECT_LT(util::stddev(out), 1e-3);
}

TEST(Detrend, RemovesSlowSinusoid) {
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double t = i / 450.0;
    xs.push_back(1.0 + 0.01 * std::sin(2.0 * std::numbers::pi * t / 120.0));
  }
  const auto out = detrend(xs);
  EXPECT_LT(util::stddev(out), 2e-4);
}

TEST(Detrend, PreservesPeakDepth) {
  // A narrow dip on a drifting baseline must survive detrending with its
  // relative depth approximately intact.
  std::vector<double> xs;
  const std::size_t n = 6000;
  for (std::size_t i = 0; i < n; ++i) {
    double v = 1.0 + 5e-5 * static_cast<double>(i);
    const double z = (static_cast<double>(i) - 3000.0) / 4.0;
    v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    xs.push_back(v);
  }
  const auto out = detrend(xs);
  double min_v = 1.0;
  for (double v : out) min_v = std::min(min_v, v);
  EXPECT_NEAR(1.0 - min_v, 0.01, 0.003);
}

TEST(Detrend, EmptyInput) {
  EXPECT_TRUE(detrend(std::vector<double>{}).empty());
}

TEST(Detrend, ShortInputFallsBackGracefully) {
  std::vector<double> xs = {2.0, 2.0, 2.0};
  const auto out = detrend(xs);
  ASSERT_EQ(out.size(), 3u);
  for (double v : out) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Detrend, InPlaceVariantMatches) {
  util::TimeSeries ts(450.0);
  for (int i = 0; i < 3000; ++i) ts.push_back(1.0 + 1e-5 * i);
  const auto expected = detrend(ts.samples());
  detrend_in_place(ts);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_DOUBLE_EQ(ts[i], expected[i]);
}

class DetrendWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DetrendWindowSweep, BaselineNormalizedForAnyWindow) {
  DetrendConfig config;
  config.window = GetParam();
  config.overlap = GetParam() / 8;
  std::vector<double> xs;
  for (int i = 0; i < 9000; ++i)
    xs.push_back(3.0 - 1e-5 * i + 2e-9 * i * static_cast<double>(i));
  const auto out = detrend(xs, config);
  EXPECT_NEAR(util::mean(out), 1.0, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Windows, DetrendWindowSweep,
                         ::testing::Values(256, 512, 1024, 2048, 4096));

}  // namespace
}  // namespace medsen::dsp
