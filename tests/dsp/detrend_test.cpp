#include "dsp/detrend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/stats.h"

namespace medsen::dsp {
namespace {

TEST(Detrend, FlatSignalStaysUnit) {
  std::vector<double> xs(5000, 2.5);
  const auto out = detrend(xs);
  for (double v : out) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Detrend, RemovesLinearDrift) {
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) xs.push_back(1.0 + 1e-4 * i);
  const auto out = detrend(xs);
  EXPECT_NEAR(util::mean(out), 1.0, 1e-4);
  EXPECT_LT(util::stddev(out), 1e-3);
}

TEST(Detrend, RemovesSlowSinusoid) {
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double t = i / 450.0;
    xs.push_back(1.0 + 0.01 * std::sin(2.0 * std::numbers::pi * t / 120.0));
  }
  const auto out = detrend(xs);
  EXPECT_LT(util::stddev(out), 2e-4);
}

TEST(Detrend, PreservesPeakDepth) {
  // A narrow dip on a drifting baseline must survive detrending with its
  // relative depth approximately intact.
  std::vector<double> xs;
  const std::size_t n = 6000;
  for (std::size_t i = 0; i < n; ++i) {
    double v = 1.0 + 5e-5 * static_cast<double>(i);
    const double z = (static_cast<double>(i) - 3000.0) / 4.0;
    v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    xs.push_back(v);
  }
  const auto out = detrend(xs);
  double min_v = 1.0;
  for (double v : out) min_v = std::min(min_v, v);
  EXPECT_NEAR(1.0 - min_v, 0.01, 0.003);
}

TEST(Detrend, EmptyInput) {
  EXPECT_TRUE(detrend(std::vector<double>{}).empty());
}

TEST(Detrend, ShortInputFallsBackGracefully) {
  std::vector<double> xs = {2.0, 2.0, 2.0};
  const auto out = detrend(xs);
  ASSERT_EQ(out.size(), 3u);
  for (double v : out) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Detrend, InPlaceVariantMatches) {
  util::TimeSeries ts(450.0);
  for (int i = 0; i < 3000; ++i) ts.push_back(1.0 + 1e-5 * i);
  const auto expected = detrend(ts.samples());
  detrend_in_place(ts);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_DOUBLE_EQ(ts[i], expected[i]);
}

class DetrendWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DetrendWindowSweep, BaselineNormalizedForAnyWindow) {
  DetrendConfig config;
  config.window = GetParam();
  config.overlap = GetParam() / 8;
  std::vector<double> xs;
  for (int i = 0; i < 9000; ++i)
    xs.push_back(3.0 - 1e-5 * i + 2e-9 * i * static_cast<double>(i));
  const auto out = detrend(xs, config);
  EXPECT_NEAR(util::mean(out), 1.0, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Windows, DetrendWindowSweep,
                         ::testing::Values(256, 512, 1024, 2048, 4096));

std::vector<double> drifting_signal(std::size_t n, double jitter_scale) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    xs[i] = 2.0 + 1e-4 * x + jitter_scale * std::sin(0.7 * x) -
            0.01 * std::exp(-0.5 * std::pow((x - 0.3 * n) / 4.0, 2.0));
  }
  return xs;
}

TEST(Detrend, WorkspaceOverloadBitIdenticalToPlain) {
  // The allocation-free workspace overload must not change a single bit,
  // across odd lengths, signals shorter than one window, and lengths
  // landing exactly on window/overlap edges.
  DetrendConfig config;
  config.window = 512;
  config.overlap = 64;
  DetrendWorkspace workspace;
  for (std::size_t n : {7u, 100u, 511u, 512u, 575u, 10007u}) {
    const auto xs = drifting_signal(n, 1e-3);
    std::vector<double> plain(n), pooled(n);
    detrend_into(xs, config, plain, nullptr);
    detrend_into(xs, config, pooled, nullptr, workspace);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(pooled[i], plain[i]) << "n=" << n << " i=" << i;
  }
}

TEST(Detrend, WorkspaceReuseAcrossSignalsLeavesNoResidue) {
  // A workspace warmed on one signal must give the same answer on the
  // next signal as a fresh workspace (scratch contents are never read).
  DetrendConfig config;
  config.window = 256;
  config.overlap = 32;
  const auto first = drifting_signal(9000, 2e-3);
  const auto second = drifting_signal(4001, 5e-4);
  DetrendWorkspace reused, fresh;
  std::vector<double> scratch_out(first.size());
  detrend_into(first, config, scratch_out, nullptr, reused);

  std::vector<double> warm(second.size()), cold(second.size());
  detrend_into(second, config, warm, nullptr, reused);
  detrend_into(second, config, cold, nullptr, fresh);
  for (std::size_t i = 0; i < second.size(); ++i)
    EXPECT_DOUBLE_EQ(warm[i], cold[i]) << i;
}

TEST(Detrend, WorkspaceBitIdenticalAcrossThreadCounts) {
  // Serial, 2-way and 8-way pools must all produce the serial result
  // bit-for-bit, with and without a reused workspace.
  DetrendConfig config;
  config.window = 1024;
  config.overlap = 128;
  const auto xs = drifting_signal(50021, 1e-3);  // odd length
  std::vector<double> serial(xs.size());
  detrend_into(xs, config, serial, nullptr);

  DetrendWorkspace workspace;
  for (unsigned workers : {1u, 3u, 7u}) {  // concurrency 2, 4, 8
    util::ThreadPool pool(workers);
    std::vector<double> pooled(xs.size());
    detrend_into(xs, config, pooled, &pool, workspace);
    for (std::size_t i = 0; i < xs.size(); ++i)
      EXPECT_DOUBLE_EQ(pooled[i], serial[i])
          << "workers=" << workers << " i=" << i;
  }
}

}  // namespace
}  // namespace medsen::dsp
