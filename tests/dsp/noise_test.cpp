#include "dsp/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"
#include "sim/signal_synth.h"

namespace medsen::dsp {
namespace {

TEST(Noise, EstimatesWhiteNoiseSigma) {
  crypto::ChaChaRng rng(1);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(0.0, 3e-4);
  EXPECT_NEAR(estimate_noise_rms(xs), 3e-4, 0.4e-4);
}

TEST(Noise, InsensitiveToPeaks) {
  crypto::ChaChaRng rng(2);
  std::vector<double> clean(20000), with_peaks(20000);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double noise = rng.normal(0.0, 2e-4);
    clean[i] = 1.0 + noise;
    with_peaks[i] = 1.0 + noise;
  }
  std::vector<double> depth(with_peaks.size(), 0.0);
  for (int k = 0; k < 20; ++k)
    sim::add_gaussian_pulse(depth, 450.0, 0.0, 2.0 + k * 2.0, 0.01, 0.01);
  for (std::size_t i = 0; i < with_peaks.size(); ++i)
    with_peaks[i] *= 1.0 - depth[i];
  EXPECT_NEAR(estimate_noise_rms(with_peaks), estimate_noise_rms(clean),
              0.3e-4);
}

TEST(Noise, InsensitiveToSlowDrift) {
  crypto::ChaChaRng rng(3);
  std::vector<double> xs(20000);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = 1.0 + 0.01 * std::sin(static_cast<double>(i) / 2000.0) +
            rng.normal(0.0, 2e-4);
  EXPECT_NEAR(estimate_noise_rms(xs), 2e-4, 0.3e-4);
}

TEST(Noise, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(estimate_noise_rms(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(estimate_noise_rms(std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(Noise, AdaptiveThresholdScalesWithNoise) {
  crypto::ChaChaRng rng(4);
  std::vector<double> quiet(10000), loud(10000);
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    quiet[i] = rng.normal(0.0, 1e-4);
    loud[i] = rng.normal(0.0, 4e-4);
  }
  const double t_quiet = adaptive_threshold(quiet);
  const double t_loud = adaptive_threshold(loud);
  EXPECT_GT(t_loud, 2.0 * t_quiet);
}

TEST(Noise, AdaptiveThresholdClamped) {
  const std::vector<double> silent(100, 1.0);
  EXPECT_DOUBLE_EQ(adaptive_threshold(silent), 5e-4);  // min clamp
  crypto::ChaChaRng rng(5);
  std::vector<double> screaming(10000);
  for (auto& x : screaming) x = rng.normal(0.0, 0.1);
  EXPECT_DOUBLE_EQ(adaptive_threshold(screaming), 5e-3);  // max clamp
}

}  // namespace
}  // namespace medsen::dsp
