#include "dsp/peak_detect.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace medsen::dsp {
namespace {

std::vector<double> baseline_with_dips(std::size_t n,
                                       const std::vector<std::size_t>& at,
                                       double depth, double sigma) {
  std::vector<double> xs(n, 1.0);
  for (std::size_t center : at) {
    for (std::size_t i = 0; i < n; ++i) {
      const double z =
          (static_cast<double>(i) - static_cast<double>(center)) / sigma;
      xs[i] -= depth * std::exp(-0.5 * z * z);
    }
  }
  return xs;
}

TEST(PeakDetect, FindsSingleDip) {
  const auto xs = baseline_with_dips(1000, {500}, 0.01, 3.0);
  const auto peaks = detect_peaks(xs, 450.0, 0.0);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].amplitude, 0.01, 0.001);
  EXPECT_EQ(peaks[0].index, 500u);
  EXPECT_NEAR(peaks[0].time_s, 500.0 / 450.0, 1e-9);
}

TEST(PeakDetect, CountsMultipleDips) {
  const auto xs = baseline_with_dips(2000, {200, 700, 1500}, 0.008, 3.0);
  const auto peaks = detect_peaks(xs, 450.0, 0.0);
  EXPECT_EQ(peaks.size(), 3u);
}

TEST(PeakDetect, IgnoresSubThresholdDips) {
  const auto xs = baseline_with_dips(1000, {400}, 0.001, 3.0);
  PeakDetectConfig config;
  config.threshold = 0.002;
  EXPECT_TRUE(detect_peaks(xs, 450.0, 0.0, config).empty());
}

TEST(PeakDetect, MinWidthRejectsSpikes) {
  std::vector<double> xs(500, 1.0);
  xs[250] = 0.9;  // single-sample glitch
  PeakDetectConfig config;
  config.min_width = 2;
  EXPECT_TRUE(detect_peaks(xs, 450.0, 0.0, config).empty());
  config.min_width = 1;
  EXPECT_EQ(detect_peaks(xs, 450.0, 0.0, config).size(), 1u);
}

TEST(PeakDetect, MergeGapJoinsSplitRegions) {
  std::vector<double> xs(300, 1.0);
  // Two shallow above-threshold regions separated by one sample that dips
  // just under the threshold: with merge_gap the regions join and the
  // interior valley (87% of the peak depth) is not significant enough to
  // re-split; without merge_gap they stay two separate peaks.
  for (int i = 100; i < 105; ++i) xs[i] = 0.998;
  xs[105] = 0.99875;  // depth 0.00125, just under the 0.0015 threshold
  for (int i = 106; i < 111; ++i) xs[i] = 0.998;
  PeakDetectConfig config;
  config.merge_gap = 1;
  EXPECT_EQ(detect_peaks(xs, 450.0, 0.0, config).size(), 1u);
  config.merge_gap = 0;
  EXPECT_EQ(detect_peaks(xs, 450.0, 0.0, config).size(), 2u);
}

TEST(PeakDetect, WidthMeasuredAtThreshold) {
  const auto xs = baseline_with_dips(1000, {500}, 0.01, 5.0);
  const auto peaks = detect_peaks(xs, 100.0, 0.0);
  ASSERT_EQ(peaks.size(), 1u);
  // Gaussian with sigma=5 samples dips below 0.002 threshold over
  // roughly +-1.8 sigma -> ~18 samples -> 0.18 s at 100 Hz.
  EXPECT_GT(peaks[0].width_s, 0.10);
  EXPECT_LT(peaks[0].width_s, 0.30);
}

TEST(PeakDetect, StartTimeOffsetsTimestamps) {
  const auto xs = baseline_with_dips(1000, {500}, 0.01, 3.0);
  const auto peaks = detect_peaks(xs, 450.0, 100.0);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].time_s, 100.0 + 500.0 / 450.0, 1e-9);
}

TEST(PeakDetect, RegionTouchingEndIsClosed) {
  std::vector<double> xs(100, 1.0);
  for (int i = 90; i < 100; ++i) xs[i] = 0.99;
  const auto peaks = detect_peaks(xs, 450.0, 0.0);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(PeakDetect, EmptyInput) {
  EXPECT_TRUE(detect_peaks(std::vector<double>{}, 450.0, 0.0).empty());
}

class PeakCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeakCountSweep, DetectsExactlyNPeaks) {
  const std::size_t n_peaks = GetParam();
  std::vector<std::size_t> centers;
  for (std::size_t i = 0; i < n_peaks; ++i)
    centers.push_back(100 + i * 50);
  const auto xs =
      baseline_with_dips(100 + n_peaks * 50 + 100, centers, 0.01, 3.0);
  EXPECT_EQ(detect_peaks(xs, 450.0, 0.0).size(), n_peaks);
}

INSTANTIATE_TEST_SUITE_P(Counts, PeakCountSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 50));

TEST(PeakDetect, ScratchOverloadIdenticalToPlain) {
  // The scratch-reusing overload must produce exactly the same peaks as
  // the plain call, and reuse across differently-sized signals must
  // leave no residue from the previous run.
  PeakDetectScratch scratch;
  const PeakDetectConfig config;
  for (std::size_t n : {503u, 2000u, 1201u}) {
    const auto xs = baseline_with_dips(
        n, {n / 4, n / 2, (3 * n) / 4}, 0.01, 3.0);
    const auto plain = detect_peaks(xs, 450.0, 0.0, config);
    const auto pooled = detect_peaks(xs, 450.0, 0.0, config, scratch);
    ASSERT_EQ(pooled.size(), plain.size()) << "n=" << n;
    for (std::size_t k = 0; k < plain.size(); ++k) {
      EXPECT_EQ(pooled[k].index, plain[k].index);
      EXPECT_DOUBLE_EQ(pooled[k].time_s, plain[k].time_s);
      EXPECT_DOUBLE_EQ(pooled[k].amplitude, plain[k].amplitude);
      EXPECT_DOUBLE_EQ(pooled[k].width_s, plain[k].width_s);
    }
  }
}

}  // namespace
}  // namespace medsen::dsp
