#include "sim/electrode_array.h"

#include <gtest/gtest.h>

namespace medsen::sim {
namespace {

TEST(ElectrodeArray, PaperPeakArithmetic) {
  // Fig. 11d: all 9 outputs on -> 17 peaks (8 doubles + 1 lead single).
  const auto design = standard_design(9);
  EXPECT_EQ(design.peaks_per_particle(design.all_mask()), 17u);
  // Fig. 8: outputs {1,2,3} (0-based {0,1,2}) with lead 0 -> 5 peaks.
  EXPECT_EQ(design.peaks_per_particle(0b111), 5u);
}

TEST(ElectrodeArray, LeadAloneSinglePeak) {
  const auto design = standard_design(9);
  EXPECT_EQ(design.peaks_per_particle(0b1), 1u);
}

TEST(ElectrodeArray, NonLeadAloneDoublePeak) {
  const auto design = standard_design(9);
  EXPECT_EQ(design.peaks_per_particle(0b10), 2u);
}

TEST(ElectrodeArray, FixedLeadMakesAllDouble) {
  auto design = standard_design(9);
  design.fixed_lead_electrode = true;
  EXPECT_EQ(design.peaks_per_particle(design.all_mask()), 18u);
  EXPECT_EQ(design.peaks_per_particle(0b1), 2u);
}

TEST(ElectrodeArray, EmptyMaskZeroPeaks) {
  const auto design = standard_design(5);
  EXPECT_EQ(design.peaks_per_particle(0), 0u);
}

TEST(ElectrodeArray, MaskBitsBeyondArrayIgnored) {
  const auto design = standard_design(3);
  EXPECT_EQ(design.peaks_per_particle(0xFFFFFFFF),
            design.peaks_per_particle(design.all_mask()));
}

TEST(ElectrodeArray, GapLengthIs45Um) {
  // Paper Section VII-A: 25 um pitch + 20 um electrode = 45 um gap.
  const auto design = standard_design(9);
  EXPECT_DOUBLE_EQ(design.gap_length_um(), 45.0);
}

TEST(ElectrodeArray, OutputPositionsIncrease) {
  const auto design = standard_design(9);
  for (std::size_t i = 1; i < design.num_outputs; ++i)
    EXPECT_GT(design.output_position_um(i), design.output_position_um(i - 1));
  EXPECT_DOUBLE_EQ(design.output_position_um(1) - design.output_position_um(0),
                   2.0 * design.pitch_um);
}

TEST(ElectrodeArray, StandardDesignValidatesOutputs) {
  EXPECT_THROW(standard_design(4), std::invalid_argument);
  EXPECT_NO_THROW(standard_design(2));
  EXPECT_NO_THROW(standard_design(16));
}

TEST(ParticlePulses, CountMatchesPeaksPerParticle) {
  const auto design = standard_design(9);
  for (ElectrodeMask mask : {0b1u, 0b10u, 0b111u, 0b101010101u,
                             design.all_mask()}) {
    const auto pulses = particle_pulses(design, mask, 0.0, 2250.0);
    EXPECT_EQ(pulses.size(), design.peaks_per_particle(mask)) << mask;
  }
}

TEST(ParticlePulses, SortedByTime) {
  const auto design = standard_design(9);
  const auto pulses =
      particle_pulses(design, design.all_mask(), 10.0, 2250.0);
  for (std::size_t i = 1; i < pulses.size(); ++i)
    EXPECT_GE(pulses[i].time_s, pulses[i - 1].time_s);
}

TEST(ParticlePulses, TimesScaleWithSpeed) {
  const auto design = standard_design(3);
  const auto slow = particle_pulses(design, 0b100, 0.0, 1000.0);
  const auto fast = particle_pulses(design, 0b100, 0.0, 2000.0);
  ASSERT_EQ(slow.size(), 2u);
  ASSERT_EQ(fast.size(), 2u);
  EXPECT_NEAR(slow[0].time_s, 2.0 * fast[0].time_s, 1e-9);
  EXPECT_NEAR(slow[0].width_s, 2.0 * fast[0].width_s, 1e-9);
}

TEST(ParticlePulses, DoublePeakSeparationIsPitch) {
  const auto design = standard_design(3);
  const double v = 2250.0;
  const auto pulses = particle_pulses(design, 0b10, 0.0, v);
  ASSERT_EQ(pulses.size(), 2u);
  EXPECT_NEAR(pulses[1].time_s - pulses[0].time_s, design.pitch_um / v,
              1e-9);
}

TEST(ParticlePulses, ZeroSpeedThrows) {
  const auto design = standard_design(3);
  EXPECT_THROW(particle_pulses(design, 0b1, 0.0, 0.0),
               std::invalid_argument);
}

TEST(ParticlePulses, EnterTimeOffsetsAllPulses) {
  const auto design = standard_design(3);
  const auto base = particle_pulses(design, 0b111, 0.0, 2250.0);
  const auto shifted = particle_pulses(design, 0b111, 5.0, 2250.0);
  ASSERT_EQ(base.size(), shifted.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_NEAR(shifted[i].time_s - base[i].time_s, 5.0, 1e-9);
}

class LeadIndexSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeadIndexSweep, AnyLeadPositionCountsCorrectly) {
  auto design = standard_design(5);
  design.lead_index = GetParam();
  // All on: 2*5 - 1 = 9 peaks regardless of which electrode is the lead.
  EXPECT_EQ(design.peaks_per_particle(design.all_mask()), 9u);
  // Lead excluded: 2 * 4 = 8 peaks.
  const ElectrodeMask without_lead =
      design.all_mask() & ~(ElectrodeMask{1} << design.lead_index);
  EXPECT_EQ(design.peaks_per_particle(without_lead), 8u);
}

INSTANTIATE_TEST_SUITE_P(Leads, LeadIndexSweep,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace medsen::sim
