#include "sim/capture.h"

#include <gtest/gtest.h>

namespace medsen::sim {
namespace {

SampleSpec whole_blood_like() {
  SampleSpec sample;
  sample.components = {{ParticleType::kBloodCell, 500.0},
                       {ParticleType::kBead358, 2000.0},
                       {ParticleType::kBead780, 1000.0}};
  return sample;
}

TEST(Capture, EnrichesTarget) {
  const auto result = capture_release(whole_blood_like(), {});
  const double factor =
      enrichment_factor(whole_blood_like(), result,
                        ParticleType::kBloodCell);
  // 0.92 capture * 0.95 release * 10x volume reduction ~ 8.7x.
  EXPECT_NEAR(factor, 0.92 * 0.95 * 10.0, 1e-9);
}

TEST(Capture, ImprovesPurity) {
  const auto sample = whole_blood_like();
  const auto result = capture_release(sample, {});
  // Input purity: 500 / 3500 ~ 0.14; enriched should be far higher.
  EXPECT_GT(result.purity(ParticleType::kBloodCell), 0.7);
}

TEST(Capture, FlowThroughKeepsUncaptured) {
  const auto result = capture_release(whole_blood_like(), {});
  // Non-targets wash through at (1 - nonspecific) of input.
  EXPECT_NEAR(result.flow_through.expected_count(ParticleType::kBead358, 1.0),
              2000.0 * 0.96, 1e-9);
  EXPECT_NEAR(
      result.flow_through.expected_count(ParticleType::kBloodCell, 1.0),
      500.0 * 0.08, 1e-9);
}

TEST(Capture, PerfectChamberIsLossless) {
  CaptureChamberConfig config;
  config.capture_efficiency = 1.0;
  config.nonspecific_binding = 0.0;
  config.release_efficiency = 1.0;
  config.concentration_factor = 1.0;
  const auto result = capture_release(whole_blood_like(), config);
  EXPECT_NEAR(result.enriched.expected_count(ParticleType::kBloodCell, 1.0),
              500.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.purity(ParticleType::kBloodCell), 1.0);
}

TEST(Capture, EmptySample) {
  const auto result = capture_release(SampleSpec{}, {});
  EXPECT_TRUE(result.enriched.components.empty());
  EXPECT_DOUBLE_EQ(result.purity(ParticleType::kBloodCell), 0.0);
}

TEST(Capture, InvalidConfigThrows) {
  CaptureChamberConfig bad;
  bad.capture_efficiency = 1.5;
  EXPECT_THROW(capture_release(SampleSpec{}, bad), std::invalid_argument);
  bad = {};
  bad.concentration_factor = 0.0;
  EXPECT_THROW(capture_release(SampleSpec{}, bad), std::invalid_argument);
}

TEST(Capture, TargetSelectable) {
  CaptureChamberConfig config;
  config.target = ParticleType::kBead780;
  const auto result = capture_release(whole_blood_like(), config);
  EXPECT_GT(result.purity(ParticleType::kBead780), 0.7);
}

class CaptureEfficiencySweep : public ::testing::TestWithParam<double> {};

TEST_P(CaptureEfficiencySweep, EnrichmentScalesWithEfficiency) {
  CaptureChamberConfig config;
  config.capture_efficiency = GetParam();
  const auto sample = whole_blood_like();
  const auto result = capture_release(sample, config);
  EXPECT_NEAR(enrichment_factor(sample, result, ParticleType::kBloodCell),
              GetParam() * config.release_efficiency *
                  config.concentration_factor,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Efficiencies, CaptureEfficiencySweep,
                         ::testing::Values(0.2, 0.5, 0.8, 0.95, 1.0));

}  // namespace
}  // namespace medsen::sim
