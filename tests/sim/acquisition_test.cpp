#include "sim/acquisition.h"

#include <gtest/gtest.h>

#include "dsp/detrend.h"
#include "dsp/peak_detect.h"

namespace medsen::sim {
namespace {

AcquisitionConfig fast_config() {
  AcquisitionConfig config;
  config.carriers_hz = {5.0e5, 2.0e6};
  config.noise_sigma = 5e-5;
  config.drift.slow_amplitude = 0.002;
  config.drift.random_walk_sigma = 1e-6;
  return config;
}

ControlSegment fixed_segment(ElectrodeMask mask, double flow = 0.08) {
  ControlSegment seg;
  seg.t_start_s = 0.0;
  seg.active_mask = mask;
  seg.flow_ul_min = flow;
  return seg;
}

TEST(Acquisition, ProducesRequestedChannels) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 500.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  const auto config = fast_config();
  const std::vector<ControlSegment> control = {fixed_segment(0b1)};
  const auto result =
      acquire(sample, channel, design, config, control, 10.0, 42);
  ASSERT_EQ(result.signals.channels.size(), 2u);
  EXPECT_EQ(result.signals.channels[0].size(),
            result.signals.channels[1].size());
  EXPECT_DOUBLE_EQ(result.signals.channels[0].sample_rate(), 450.0);
}

TEST(Acquisition, GroundTruthCountsByType) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 1000.0},
                       {ParticleType::kBead780, 500.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  const std::vector<ControlSegment> control = {fixed_segment(0b1)};
  const auto result =
      acquire(sample, channel, design, fast_config(), control, 60.0, 7);
  const auto small =
      result.truth.type_counts[static_cast<std::size_t>(ParticleType::kBead358)];
  const auto large =
      result.truth.type_counts[static_cast<std::size_t>(ParticleType::kBead780)];
  EXPECT_GT(small, large);
  EXPECT_EQ(small + large, result.truth.total_particles());
}

TEST(Acquisition, PulsesFollowElectrodeMask) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 300.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  const std::vector<ControlSegment> control = {
      fixed_segment(design.all_mask())};
  const auto result =
      acquire(sample, channel, design, fast_config(), control, 30.0, 9);
  for (const auto& transit : result.truth.transits)
    EXPECT_EQ(transit.pulses_emitted, 17u);
}

TEST(Acquisition, DetectedPeaksMatchTruthForSparseSample) {
  // With a quiet signal and well-separated transits, cloud-side peak
  // detection must recover the emitted pulse count almost exactly.
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 150.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  auto config = fast_config();
  const std::vector<ControlSegment> control = {fixed_segment(0b1)};
  const auto result =
      acquire(sample, channel, design, config, control, 60.0, 11);
  const auto& ref = result.signals.channels[0];
  const auto detrended = dsp::detrend(ref.samples());
  const auto peaks = dsp::detect_peaks(detrended, ref.sample_rate(), 0.0);
  const double truth = static_cast<double>(result.truth.total_pulses);
  EXPECT_NEAR(static_cast<double>(peaks.size()), truth,
              std::max(2.0, truth * 0.12));
}

TEST(Acquisition, GainScalesPeakAmplitude) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 100.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  auto config = fast_config();
  config.noise_sigma = 0.0;
  config.drift = DriftConfig{0.0, 120.0, 0.0, 0.0};

  auto run_with_gain = [&](double gain) {
    ControlSegment seg = fixed_segment(0b10);
    seg.gains.assign(9, gain);
    const std::vector<ControlSegment> control = {seg};
    const auto result =
        acquire(sample, channel, design, config, control, 30.0, 13);
    const auto& ref = result.signals.channels[0];
    double min_v = 1.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      min_v = std::min(min_v, ref[i]);
    return 1.0 - min_v;
  };
  const double depth_1x = run_with_gain(1.0);
  const double depth_2x = run_with_gain(2.0);
  EXPECT_GT(depth_1x, 0.0);
  EXPECT_NEAR(depth_2x / depth_1x, 2.0, 0.2);
}

TEST(Acquisition, EmptyControlThrows) {
  SampleSpec sample;
  ChannelConfig channel;
  const auto design = standard_design(9);
  EXPECT_THROW(
      acquire(sample, channel, design, fast_config(), {}, 10.0, 1),
      std::invalid_argument);
}

TEST(Acquisition, ControlAtPicksLatestSegment) {
  std::vector<ControlSegment> control = {fixed_segment(0b1),
                                         fixed_segment(0b11)};
  control[1].t_start_s = 10.0;
  EXPECT_EQ(control_at(control, 5.0).active_mask, 0b1u);
  EXPECT_EQ(control_at(control, 10.0).active_mask, 0b11u);
  EXPECT_EQ(control_at(control, 50.0).active_mask, 0b11u);
}

TEST(Acquisition, DeterministicForSeed) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 400.0}};
  ChannelConfig channel;
  const auto design = standard_design(9);
  const std::vector<ControlSegment> control = {fixed_segment(0b101)};
  const auto a =
      acquire(sample, channel, design, fast_config(), control, 10.0, 99);
  const auto b =
      acquire(sample, channel, design, fast_config(), control, 10.0, 99);
  ASSERT_EQ(a.signals.channels[0].size(), b.signals.channels[0].size());
  for (std::size_t i = 0; i < a.signals.channels[0].size(); ++i)
    EXPECT_DOUBLE_EQ(a.signals.channels[0][i], b.signals.channels[0][i]);
  EXPECT_EQ(a.truth.total_particles(), b.truth.total_particles());
}

}  // namespace
}  // namespace medsen::sim
