#include "sim/impedance_model.h"

#include <gtest/gtest.h>

namespace medsen::sim {
namespace {

TEST(Impedance, CapacitanceDominatesAtLowFrequency) {
  // Paper Section III-A: below ~10 kHz |Z| is in the MOhm range.
  ElectrodePairModel model;
  EXPECT_GT(impedance_magnitude(model, 1.0e3), 2.0e5);
  EXPECT_LT(resistive_fraction(model, 1.0e3), 0.2);
}

TEST(Impedance, ResistanceDominatesAtHighFrequency) {
  // Above ~100 kHz the double layer is short-circuited.
  ElectrodePairModel model;
  EXPECT_NEAR(impedance_magnitude(model, 1.0e6),
              model.solution_resistance_ohm,
              model.solution_resistance_ohm * 0.1);
  EXPECT_GT(resistive_fraction(model, 1.0e6), 0.95);
}

TEST(Impedance, MagnitudeMonotonicallyFallsToResistivePlateau) {
  ElectrodePairModel model;
  model.parasitic_capacitance_f = 0.0;  // pure series branch
  double prev = impedance_magnitude(model, 100.0);
  for (double f = 300.0; f <= 1.0e6; f *= 3.0) {
    const double z = impedance_magnitude(model, f);
    EXPECT_LT(z, prev);
    prev = z;
  }
  EXPECT_GE(prev, model.solution_resistance_ohm * 0.999);
}

TEST(Impedance, DcBlocksCompletely) {
  ElectrodePairModel model;
  EXPECT_GT(impedance_magnitude(model, 0.0), 1e11);
}

TEST(Impedance, SensitivityPeaksInOperatingBand) {
  // The instrument operates at >= 500 kHz where amplitude sensitivity to
  // resistance changes approaches 1.
  ElectrodePairModel model;
  EXPECT_GT(amplitude_sensitivity(model, 5.0e5), 0.9);
  EXPECT_LT(amplitude_sensitivity(model, 1.0e3), 0.2);
}

TEST(Impedance, ParasiticShuntLowersHighFrequencyMagnitude) {
  ElectrodePairModel with_parasitic;
  ElectrodePairModel without = with_parasitic;
  without.parasitic_capacitance_f = 0.0;
  const double f = 50.0e6;  // far above the operating band
  EXPECT_LT(impedance_magnitude(with_parasitic, f),
            impedance_magnitude(without, f));
}

}  // namespace
}  // namespace medsen::sim
