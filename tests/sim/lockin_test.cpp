#include "sim/lockin.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/stats.h"

namespace medsen::sim {
namespace {

TEST(LockIn, OutputRateAndLength) {
  LockInConfig config;
  const std::vector<double> input(4500, 1.0);  // 1 s at internal rate
  const auto out = lockin_output(input, 0.0, config);
  EXPECT_DOUBLE_EQ(out.sample_rate(), 450.0);
  EXPECT_EQ(out.size(), 450u);
}

TEST(LockIn, DcPassesUnchanged) {
  LockInConfig config;
  const std::vector<double> input(9000, 0.75);
  const auto out = lockin_output(input, 0.0, config);
  for (std::size_t i = 10; i < out.size(); ++i)
    EXPECT_NEAR(out[i], 0.75, 1e-3);
}

TEST(LockIn, PrimingIsExactFromFirstSample) {
  // The filter is primed at the exact DC steady state for the first
  // input sample (dsp::ButterworthLowPass2::reset(dc)), so a constant
  // input passes through with no startup transient at all — the old
  // 64-iteration warm-up loop only approximated this.
  LockInConfig config;
  const std::vector<double> input(4500, 0.75);
  const auto out = lockin_output(input, 0.0, config);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], 0.75, 1e-12) << i;
}

TEST(LockIn, HighFrequencyRippleSuppressed) {
  LockInConfig config;
  std::vector<double> input(45000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double t = static_cast<double>(i) / config.internal_rate_hz();
    input[i] =
        1.0 + 0.1 * std::sin(2.0 * std::numbers::pi * 1500.0 * t);
  }
  const auto out = lockin_output(input, 0.0, config);
  std::vector<double> tail(out.samples().begin() + 100,
                           out.samples().end());
  EXPECT_LT(util::stddev(tail), 0.01);
  EXPECT_NEAR(util::mean(tail), 1.0, 0.01);
}

TEST(LockIn, SlowPeakSurvives) {
  // A 20 ms transit dip (well inside the 120 Hz passband) must keep most
  // of its depth through the output chain.
  LockInConfig config;
  std::vector<double> input(45000, 1.0);
  const double rate = config.internal_rate_hz();
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    const double z = (t - 5.0) / 0.008;
    input[i] -= 0.01 * std::exp(-0.5 * z * z);
  }
  const auto out = lockin_output(input, 0.0, config);
  double min_v = 1.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    min_v = std::min(min_v, out[i]);
  EXPECT_NEAR(1.0 - min_v, 0.01, 0.004);
}

TEST(LockIn, StartTimePropagated) {
  LockInConfig config;
  const std::vector<double> input(450, 1.0);
  const auto out = lockin_output(input, 12.5, config);
  EXPECT_DOUBLE_EQ(out.start_time(), 12.5);
}

TEST(LockIn, EmptyInputEmptyOutput) {
  LockInConfig config;
  const auto out = lockin_output({}, 0.0, config);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace medsen::sim
