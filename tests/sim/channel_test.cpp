#include "sim/channel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace medsen::sim {
namespace {

TEST(Channel, LinearVelocityMatchesPaperCalculation) {
  // Paper Section VII-A: 0.081 uL/min in a 30x20 um channel gives ~20 ms
  // transits over 45 um, i.e. v ~ 2250 um/s.
  ChannelGeometry geometry;
  const double v = linear_velocity_um_s(geometry, 0.081);
  EXPECT_NEAR(v, 0.081e9 / 60.0 / 600.0, 1e-6);
  EXPECT_NEAR(45.0 / v, 0.020, 0.002);  // ~20 ms per 45 um gap
}

TEST(Channel, PumpedVolumeSingleSegment) {
  const std::vector<FlowSegment> flow = {{0.0, 0.06}};
  EXPECT_NEAR(pumped_volume_ul(flow, 60.0), 0.06, 1e-12);
}

TEST(Channel, PumpedVolumeMultiSegment) {
  const std::vector<FlowSegment> flow = {{0.0, 0.06}, {30.0, 0.12}};
  EXPECT_NEAR(pumped_volume_ul(flow, 60.0), 0.03 + 0.06, 1e-12);
}

TEST(Channel, TransitCountTracksConcentration) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 2000.0}};
  ChannelConfig config;
  config.loss.enabled = false;
  crypto::ChaChaRng rng(1);
  const double duration = 120.0;
  const auto events =
      simulate_transits(sample, config, {{0.0, 0.08}}, duration, rng);
  const double expected = 2000.0 * 0.08 * duration / 60.0;  // 320
  EXPECT_NEAR(static_cast<double>(events.size()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Channel, LossesReduceCounts) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 2000.0}};
  ChannelConfig no_loss;
  no_loss.loss.enabled = false;
  ChannelConfig lossy;
  lossy.loss.enabled = true;
  lossy.loss.adsorption_probability = 0.2;
  crypto::ChaChaRng rng1(2), rng2(2);
  const auto clean =
      simulate_transits(sample, no_loss, {{0.0, 0.08}}, 120.0, rng1);
  const auto reduced =
      simulate_transits(sample, lossy, {{0.0, 0.08}}, 120.0, rng2);
  EXPECT_LT(reduced.size(), clean.size());
}

TEST(Channel, SedimentationGrowsWithRunTime) {
  // Count deficit should be proportionally worse in the later half of a
  // long run (paper Fig. 12/13 discussion).
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 1500.0}};
  ChannelConfig config;
  config.loss.enabled = true;
  config.loss.adsorption_probability = 0.0;
  config.loss.sed_rate_per_hour = 2.0;
  crypto::ChaChaRng rng(3);
  const double duration = 1800.0;
  const auto events =
      simulate_transits(sample, config, {{0.0, 0.08}}, duration, rng);
  std::size_t first_half = 0, second_half = 0;
  for (const auto& ev : events)
    (ev.enter_time_s < duration / 2 ? first_half : second_half)++;
  EXPECT_LT(second_half, first_half);
}

TEST(Channel, EventsSortedWithHeadway) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 20000.0}};
  ChannelConfig config;
  config.loss.enabled = false;
  crypto::ChaChaRng rng(4);
  const auto events =
      simulate_transits(sample, config, {{0.0, 0.08}}, 30.0, rng);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].enter_time_s,
              events[i - 1].enter_time_s + config.min_headway_s - 1e-12);
}

TEST(Channel, SpeedTracksFlowSegments) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 3000.0}};
  ChannelConfig config;
  config.loss.enabled = false;
  config.speed_jitter = 0.0;
  crypto::ChaChaRng rng(5);
  const std::vector<FlowSegment> flow = {{0.0, 0.04}, {30.0, 0.16}};
  const auto events = simulate_transits(sample, config, flow, 60.0, rng);
  const double v_slow = linear_velocity_um_s(config.geometry, 0.04);
  const double v_fast = linear_velocity_um_s(config.geometry, 0.16);
  for (const auto& ev : events) {
    const double expected = ev.enter_time_s < 30.0 ? v_slow : v_fast;
    // Arrival jitter near the boundary allows small mismatch; compare
    // away from it.
    if (std::fabs(ev.enter_time_s - 30.0) > 1.0) {
      EXPECT_NEAR(ev.speed_um_s, expected, expected * 1e-6);
    }
  }
}

TEST(Channel, EmptyFlowProfileThrows) {
  SampleSpec sample;
  ChannelConfig config;
  crypto::ChaChaRng rng(6);
  EXPECT_THROW(simulate_transits(sample, config, {}, 10.0, rng),
               std::invalid_argument);
}

TEST(Channel, ZeroConcentrationNoEvents) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 0.0}};
  ChannelConfig config;
  crypto::ChaChaRng rng(7);
  EXPECT_TRUE(
      simulate_transits(sample, config, {{0.0, 0.08}}, 60.0, rng).empty());
}

}  // namespace
}  // namespace medsen::sim
