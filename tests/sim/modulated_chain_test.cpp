// Validates the simulator's baseband shortcut against the real signal
// chain: a particle-induced impedance dip amplitude-modulated onto a
// carrier, passed through quadrature demodulation + the lock-in output
// stage, must produce the same peak the baseband path synthesizes.

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/demod.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "sim/lockin.h"
#include "sim/signal_synth.h"

namespace medsen::sim {
namespace {

TEST(ModulatedChain, BasebandShortcutMatchesFullDemodulation) {
  // Scaled-down carrier (10 kHz at 100 kHz sampling) keeps the test fast;
  // the ratio structure matches the instrument (carrier >> envelope BW).
  const double raw_rate = 100000.0;
  const double carrier = 10000.0;
  const double duration = 2.0;
  const auto n = static_cast<std::size_t>(raw_rate * duration);

  // The physical truth: a 1.2% dip, 10 ms wide, at t = 1.0 s.
  std::vector<double> envelope(n, 1.0);
  std::vector<double> depth(n, 0.0);
  add_gaussian_pulse(depth, raw_rate, 0.0, 1.0, 0.010, 0.012);
  for (std::size_t i = 0; i < n; ++i) envelope[i] = 1.0 - depth[i];

  // Full chain: modulate -> quadrature demodulate -> decimate to 450 Hz.
  const auto modulated = dsp::modulate(envelope, carrier, raw_rate, 0.4);
  dsp::QuadratureDemodulator demod(carrier, raw_rate, 450.0);
  auto recovered = demod.apply(modulated);
  // Decimate to the lock-in output rate.
  const auto decim_factor = static_cast<std::size_t>(raw_rate / 450.0);
  const auto full_chain = dsp::decimate(recovered, decim_factor);

  // Baseband shortcut at the output rate directly.
  const double out_rate = raw_rate / static_cast<double>(decim_factor);
  std::vector<double> shortcut(full_chain.size(), 1.0);
  std::vector<double> depth_out(full_chain.size(), 0.0);
  add_gaussian_pulse(depth_out, out_rate, 0.0, 1.0, 0.010, 0.012);
  for (std::size_t i = 0; i < shortcut.size(); ++i)
    shortcut[i] = 1.0 - depth_out[i];

  // Both paths: detrend + detect. Peak depth and time must agree.
  dsp::PeakDetectConfig config;
  config.threshold = 0.003;
  const auto peaks_full = dsp::detect_peaks(dsp::detrend(full_chain),
                                            out_rate, 0.0, config);
  const auto peaks_short = dsp::detect_peaks(dsp::detrend(shortcut),
                                             out_rate, 0.0, config);
  ASSERT_EQ(peaks_full.size(), 1u);
  ASSERT_EQ(peaks_short.size(), 1u);
  EXPECT_NEAR(peaks_full[0].time_s, peaks_short[0].time_s, 0.01);
  EXPECT_NEAR(peaks_full[0].amplitude, peaks_short[0].amplitude, 0.003);
}

TEST(ModulatedChain, DemodulatedBaselineIsUnity) {
  const double raw_rate = 100000.0;
  const double carrier = 10000.0;
  const std::vector<double> envelope(30000, 1.0);
  const auto modulated = dsp::modulate(envelope, carrier, raw_rate);
  dsp::QuadratureDemodulator demod(carrier, raw_rate, 450.0);
  const auto recovered = demod.apply(modulated);
  for (std::size_t i = 10000; i < recovered.size(); i += 1000)
    EXPECT_NEAR(recovered[i], 1.0, 0.01);
}

}  // namespace
}  // namespace medsen::sim
