#include "sim/pump.h"

#include <gtest/gtest.h>

namespace medsen::sim {
namespace {

TEST(Pump, RejectsOutOfRangeTargets) {
  PumpProgram program;
  EXPECT_THROW(program.add({2.0, 1.0, false}), std::invalid_argument);
  EXPECT_THROW(program.add({0.0, 1.0, false}), std::invalid_argument);
  EXPECT_THROW(program.add({0.08, -1.0, false}), std::invalid_argument);
}

TEST(Pump, StepProgramCompilesToSegments) {
  PumpProgram program;
  program.add({0.08, 10.0, false}).add({0.16, 5.0, false});
  const auto segments = program.compile();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[0].t_start_s, 0.0);
  EXPECT_DOUBLE_EQ(segments[0].flow_ul_min, 0.08);
  EXPECT_DOUBLE_EQ(segments[1].t_start_s, 10.0);
  EXPECT_DOUBLE_EQ(segments[1].flow_ul_min, 0.16);
}

TEST(Pump, RampDiscretizesMonotonically) {
  PumpProgram program;
  PumpStep ramp;
  ramp.target_ul_min = 0.5;
  ramp.hold_s = 2.0;
  ramp.ramp = true;
  program.add(ramp);
  const auto segments = program.compile(0.1, 0.1);
  ASSERT_GT(segments.size(), 3u);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GT(segments[i].t_start_s, segments[i - 1].t_start_s);
    EXPECT_GE(segments[i].flow_ul_min, segments[i - 1].flow_ul_min);
  }
  EXPECT_DOUBLE_EQ(segments.back().flow_ul_min, 0.5);
}

TEST(Pump, RampTimeFollowsSlewLimit) {
  PumpLimits limits;
  limits.max_slew_ul_min_per_s = 0.1;
  PumpProgram program(limits);
  PumpStep ramp;
  ramp.target_ul_min = 0.5;
  ramp.hold_s = 1.0;
  ramp.ramp = true;
  program.add(ramp);
  // 0.0 -> 0.5 at 0.1/s = 5 s ramp + 1 s hold.
  EXPECT_NEAR(program.duration_s(0.0), 6.0, 1e-9);
}

TEST(Pump, EmptyProgramCompilesToInitialFlow) {
  PumpProgram program;
  const auto segments = program.compile(0.08);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].flow_ul_min, 0.08);
}

TEST(Pump, FlowAtPicksActiveSegment) {
  const std::vector<FlowSegment> profile = {{0.0, 0.05}, {10.0, 0.10}};
  EXPECT_DOUBLE_EQ(flow_at(profile, 0.0), 0.05);
  EXPECT_DOUBLE_EQ(flow_at(profile, 9.99), 0.05);
  EXPECT_DOUBLE_EQ(flow_at(profile, 10.0), 0.10);
  EXPECT_DOUBLE_EQ(flow_at(profile, 100.0), 0.10);
  EXPECT_THROW(flow_at({}, 0.0), std::invalid_argument);
}

TEST(Pump, CompiledProgramDrivesChannelSimulation) {
  PumpProgram program;
  program.add({0.08, 30.0, false});
  const auto profile = program.compile();
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 1000.0}};
  ChannelConfig config;
  config.loss.enabled = false;
  crypto::ChaChaRng rng(12);
  const auto events = simulate_transits(sample, config, profile, 30.0, rng);
  EXPECT_GT(events.size(), 5u);
}

TEST(Pump, BadRampResolutionThrows) {
  PumpProgram program;
  program.add({0.08, 1.0, false});
  EXPECT_THROW((void)program.compile(0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace medsen::sim
