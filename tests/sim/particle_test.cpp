#include "sim/particle.h"

#include <gtest/gtest.h>

namespace medsen::sim {
namespace {

TEST(Particle, TypeNames) {
  EXPECT_EQ(to_string(ParticleType::kBloodCell), "blood_cell");
  EXPECT_EQ(to_string(ParticleType::kBead358), "bead_3.58um");
  EXPECT_EQ(to_string(ParticleType::kBead780), "bead_7.8um");
}

TEST(Particle, NominalDiameters) {
  EXPECT_NEAR(properties(ParticleType::kBead358).diameter_um_mean, 3.58,
              1e-9);
  EXPECT_NEAR(properties(ParticleType::kBead780).diameter_um_mean, 7.8,
              1e-9);
}

TEST(Particle, PaperAmplitudeOrderingAtReference) {
  // Paper Section VI-B: blood ~2x, 7.8 um beads ~4x the 3.58 um bead.
  Particle small{ParticleType::kBead358,
                 properties(ParticleType::kBead358).diameter_um_mean};
  Particle blood{ParticleType::kBloodCell,
                 properties(ParticleType::kBloodCell).diameter_um_mean};
  Particle large{ParticleType::kBead780,
                 properties(ParticleType::kBead780).diameter_um_mean};
  const double ref = 5.0e5;
  const double a_small = peak_contrast(small, ref);
  const double a_blood = peak_contrast(blood, ref);
  const double a_large = peak_contrast(large, ref);
  EXPECT_NEAR(a_blood / a_small, 2.0, 0.5);
  EXPECT_NEAR(a_large / a_small, 4.0, 1.0);
}

TEST(Particle, BeadsAreFrequencyFlat) {
  EXPECT_DOUBLE_EQ(frequency_factor(ParticleType::kBead358, 5.0e5), 1.0);
  EXPECT_DOUBLE_EQ(frequency_factor(ParticleType::kBead358, 4.0e6), 1.0);
  EXPECT_DOUBLE_EQ(frequency_factor(ParticleType::kBead780, 4.0e6), 1.0);
}

TEST(Particle, BloodCellRollsOffAboveCutoff) {
  // Fig. 15a: blood cell response at >= 2 MHz is visibly lower than at
  // 500 kHz, while normalized to 1 at the reference.
  const double at_ref = frequency_factor(ParticleType::kBloodCell, 5.0e5);
  const double at_2mhz = frequency_factor(ParticleType::kBloodCell, 2.0e6);
  const double at_4mhz = frequency_factor(ParticleType::kBloodCell, 4.0e6);
  EXPECT_NEAR(at_ref, 1.0, 1e-9);
  EXPECT_LT(at_2mhz, 0.9);
  EXPECT_LT(at_4mhz, at_2mhz);
}

TEST(Particle, ContrastScalesWithVolume) {
  Particle nominal{ParticleType::kBead358, 3.58};
  Particle doubled{ParticleType::kBead358, 7.16};
  EXPECT_NEAR(peak_contrast(doubled, 5.0e5) / peak_contrast(nominal, 5.0e5),
              8.0, 1e-6);
}

TEST(SampleSpec, ExpectedCountSumsComponents) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead358, 100.0},
                       {ParticleType::kBead780, 50.0},
                       {ParticleType::kBead358, 20.0}};
  EXPECT_DOUBLE_EQ(sample.expected_count(ParticleType::kBead358, 2.0),
                   240.0);
  EXPECT_DOUBLE_EQ(sample.expected_count(ParticleType::kBead780, 2.0),
                   100.0);
  EXPECT_DOUBLE_EQ(sample.expected_count(ParticleType::kBloodCell, 2.0),
                   0.0);
}

}  // namespace
}  // namespace medsen::sim
