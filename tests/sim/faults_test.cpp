// The fault-injection layer's contract: deterministic, independently
// seeded, and strictly inert when disabled — enabling a fault must not
// perturb the base simulation's randomness, and disabling all faults
// must reproduce the fault-free output bit for bit.

#include "sim/faults.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/acquisition.h"
#include "sim/pump.h"

namespace medsen::sim {
namespace {

AcquisitionConfig fast_config() {
  AcquisitionConfig config;
  config.carriers_hz = {5.0e5, 2.0e6};
  config.noise_sigma = 5e-5;
  config.drift.slow_amplitude = 0.002;
  config.drift.random_walk_sigma = 1e-6;
  return config;
}

ControlSegment fixed_segment(ElectrodeMask mask, double flow = 0.08) {
  ControlSegment seg;
  seg.t_start_s = 0.0;
  seg.active_mask = mask;
  seg.flow_ul_min = flow;
  return seg;
}

AcquisitionResult run(const AcquisitionConfig& config,
                      ElectrodeMask mask = 0b1, double duration = 20.0) {
  SampleSpec sample;
  sample.components = {{ParticleType::kBead780, 300.0}};
  ChannelConfig channel;
  channel.loss.enabled = false;
  const auto design = standard_design(9);
  const std::vector<ControlSegment> control = {fixed_segment(mask)};
  return acquire(sample, channel, design, config, control, duration, 42);
}

void expect_bit_identical(const util::MultiChannelSeries& a,
                          const util::MultiChannelSeries& b) {
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    ASSERT_EQ(a.channels[c].size(), b.channels[c].size());
    for (std::size_t i = 0; i < a.channels[c].size(); ++i)
      ASSERT_EQ(a.channels[c][i], b.channels[c][i])
          << "channel " << c << " sample " << i;
  }
}

TEST(Faults, DisabledLayerIsBitIdentical) {
  // A fault config with every fault off — even with a different fault
  // seed — must not change a single output bit.
  const auto baseline = run(fast_config());
  auto config = fast_config();
  config.faults.seed = 0xDEADBEEF;
  config.faults.attempt = 7;
  const auto with_layer = run(config);
  expect_bit_identical(baseline.signals, with_layer.signals);
  EXPECT_EQ(baseline.truth.total_particles(),
            with_layer.truth.total_particles());
}

TEST(Faults, EnablingFaultDoesNotPerturbArrivals) {
  // The fault stream is isolated from the base simulation's RNG: the
  // same particles transit at the same times whether or not a fault is
  // injected.
  const auto clean = run(fast_config());
  auto config = fast_config();
  config.faults.open.enabled = true;
  config.faults.open.electrode = 0;
  const auto faulty = run(config);
  ASSERT_EQ(clean.truth.transits.size(), faulty.truth.transits.size());
  for (std::size_t i = 0; i < clean.truth.transits.size(); ++i)
    EXPECT_EQ(clean.truth.transits[i].event.enter_time_s,
              faulty.truth.transits[i].event.enter_time_s);
}

TEST(Faults, DeterministicForSameFaultSeed) {
  auto config = fast_config();
  config.faults.bubbles.enabled = true;
  config.faults.short_circuit.enabled = true;
  config.faults.short_circuit.electrode = 0;
  const auto a = run(config);
  const auto b = run(config);
  expect_bit_identical(a.signals, b.signals);
}

TEST(Faults, OpenElectrodeRailsItsBoundChannelOnly) {
  auto config = fast_config();
  config.faults.open.enabled = true;
  config.faults.open.electrode = 0;  // bound to carrier channel 0 % 2
  config.faults.open.onset = {0.2, 0.2};
  const auto result = run(config);  // electrode 0 always selected

  const auto& bound = result.signals.channels[0];
  const auto& other = result.signals.channels[1];
  std::size_t bound_dead = 0, other_dead = 0;
  const std::size_t onset_index = bound.size() / 5;
  for (std::size_t i = onset_index; i < bound.size(); ++i) {
    if (bound[i] < 0.3) ++bound_dead;
    if (other[i] < 0.3) ++other_dead;
  }
  // Post-onset the dead electrode rails its channel while selected;
  // the unrelated carrier keeps a normal baseline.
  EXPECT_GT(bound_dead, (bound.size() - onset_index) / 2);
  EXPECT_LT(other_dead, (other.size() - onset_index) / 20);
}

TEST(Faults, StallPinsEveryChannelToStalledBaseline) {
  auto config = fast_config();
  config.faults.clog.enabled = true;
  config.faults.clog.onset = {0.1, 0.1};
  config.faults.clog.tau_s = 1.0;  // aggressive clog: stalls quickly
  const auto result = run(config, 0b1, 30.0);

  for (const auto& channel : result.signals.channels) {
    ASSERT_GT(channel.size(), 0u);
    // The tail of the record is after the stall: exactly the stalled
    // baseline, no noise (the ADC sees a dead fluidic channel).
    const std::size_t tail_start = channel.size() - channel.size() / 10;
    for (std::size_t i = tail_start; i < channel.size(); ++i)
      ASSERT_DOUBLE_EQ(channel[i], config.faults.clog.stalled_baseline);
  }
}

TEST(Faults, ClogStallsLaterAtLowerCommandedFlow) {
  // The physical rationale for the recovery policy's flow derate: a
  // lower commanded flow packs the clog more slowly (tau scales up), so
  // the delivered flow crosses the stall threshold later or never.
  ClogFault clog;
  clog.enabled = true;
  const double onset = 2.0, tau = 6.0, nominal = 0.08;
  const double fast = clogged_flow(nominal, 10.0, onset, tau, nominal);
  const double slow = clogged_flow(nominal / 2, 10.0, onset, tau, nominal);
  EXPECT_LT(fast, nominal);
  // Same elapsed time, half the commanded rate: less relative decay.
  EXPECT_GT(slow / (nominal / 2), fast / nominal);
}

TEST(Faults, BubblesClearAfterConfiguredAttempts) {
  auto config = fast_config();
  config.faults.bubbles.enabled = true;
  config.faults.bubbles.attempts_affected = 1;

  const auto clean = run(fast_config());
  const auto first_attempt = run(config);
  // Attempt 0 is affected: at least one all-channel dip must appear.
  double clean_min = 1e9, faulty_min = 1e9;
  for (std::size_t i = 0; i < clean.signals.channels[0].size(); ++i) {
    clean_min = std::min(clean_min, clean.signals.channels[0][i]);
    faulty_min = std::min(faulty_min, first_attempt.signals.channels[0][i]);
  }
  EXPECT_LT(faulty_min, clean_min - 0.05);

  // Attempt 1 is past attempts_affected: the flush carried the bubbles
  // out and the output is bit-identical to the fault-free run.
  config.faults.attempt = 1;
  const auto second_attempt = run(config);
  expect_bit_identical(clean.signals, second_attempt.signals);
}

TEST(Faults, SaturationClipsAtTheRail) {
  auto config = fast_config();
  config.faults.saturation.enabled = true;
  config.faults.saturation.channel = 1;
  config.faults.saturation.onset = {0.1, 0.1};
  const auto result = run(config);

  const auto& sat = result.signals.channels[1];
  double max_v = 0.0;
  std::size_t railed = 0;
  for (std::size_t i = 0; i < sat.size(); ++i) {
    max_v = std::max(max_v, sat[i]);
    if (sat[i] == config.faults.saturation.rail_high) ++railed;
  }
  EXPECT_LE(max_v, config.faults.saturation.rail_high);
  EXPECT_GT(railed, sat.size() / 10);  // visibly clipped, not borderline
}

TEST(Faults, AdcStuckPinsAContiguousWindow) {
  auto config = fast_config();
  config.faults.adc_stuck.enabled = true;
  config.faults.adc_stuck.channel = 0;
  config.faults.adc_stuck.window_frac = 0.3;
  const auto result = run(config);

  const auto& pinned = result.signals.channels[0];
  std::size_t longest = 0, current = 0;
  for (std::size_t i = 1; i < pinned.size(); ++i) {
    current = pinned[i] == pinned[i - 1] ? current + 1 : 0;
    longest = std::max(longest, current);
  }
  EXPECT_GE(longest, static_cast<std::size_t>(
                         static_cast<double>(pinned.size()) * 0.25));
}

TEST(Faults, StuckOnMuxOverridesCommandedMask) {
  const auto design = standard_design(9);
  FaultConfig config;
  config.stuck_mux.enabled = true;
  config.stuck_mux.electrode = 3;
  config.stuck_mux.stuck_on = true;
  config.stuck_mux.onset = {0.2, 0.2};
  const auto plan = FaultPlan::plan(config, 10.0, design, 2);
  ASSERT_TRUE(plan.active());

  EXPECT_TRUE(plan.electrode_health(0.0).healthy());  // before onset
  const auto health = plan.electrode_health(5.0);
  EXPECT_EQ(health.forced_on, ElectrodeMask{1} << 3);
  // The commanded mask cannot turn the stuck bit off.
  EXPECT_EQ(apply_health(0b0, health), ElectrodeMask{0b1000});
}

TEST(Faults, InactivePlanLeavesFlowProfileUntouched) {
  const auto design = standard_design(9);
  const auto plan = FaultPlan::plan(FaultConfig{}, 10.0, design, 2);
  EXPECT_FALSE(plan.active());
  std::vector<FlowSegment> profile = {{0.0, 0.08}, {5.0, 0.12}};
  auto copy = profile;
  FaultPlan mutable_plan = plan;
  mutable_plan.degrade_flow(copy, 10.0);
  EXPECT_EQ(copy.size(), profile.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy[i].t_start_s, profile[i].t_start_s);
    EXPECT_EQ(copy[i].flow_ul_min, profile[i].flow_ul_min);
  }
}

}  // namespace
}  // namespace medsen::sim
