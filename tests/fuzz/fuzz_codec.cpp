// Fuzz target: the compression container decode path
// (compress::decompress): container header parsing, canonical-Huffman
// table reconstruction from hostile code-length tables, bit-stream
// decoding, and LZSS back-reference resolution.
//
// Property checked on accepted inputs: re-compressing the decoded bytes
// and decoding again reproduces them (decode is a left inverse of
// encode on everything decode accepts).

#include "fuzz_target.h"

#include <cstdlib>
#include <span>
#include <stdexcept>

#include "compress/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  std::vector<std::uint8_t> decoded;
  try {
    decoded = medsen::compress::decompress(input);
  } catch (const std::runtime_error&) {
    return 0;  // magic/CRC/size/strictness rejection (incl. truncation)
  }
  const auto re_packed = medsen::compress::compress(decoded);
  if (medsen::compress::decompress(re_packed) != decoded) std::abort();
  return 0;
}
