// Standalone driver for the fuzz targets: used when the toolchain has
// no libFuzzer (gcc). Two modes, combinable in one invocation:
//
//   fuzz_x CORPUS_DIR...            replay every file (regression mode)
//   fuzz_x --smoke-seconds N --seed S CORPUS_DIR...
//                                   additionally run a seeded mutational
//                                   fuzz over the corpus for ~N seconds
//
// The mutation engine is deliberately simple (bit/byte flips, truncate,
// extend, splice, interesting-value stamps) but seeded, so a failing
// iteration can be reproduced with --seed/--max-iters. A crash or an
// unexpected exception type aborts with a nonzero exit and the
// offending input is written to ./fuzz-crash-<target>.bin.

#include "fuzz_target.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

namespace {

constexpr std::size_t kMaxInputBytes = 1 << 20;

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump_crash(const std::vector<std::uint8_t>& input) {
  std::ofstream out("fuzz-crash.bin", std::ios::binary);
  out.write(reinterpret_cast<const char*>(input.data()),
            static_cast<std::streamsize>(input.size()));
  std::cerr << "offending input written to fuzz-crash.bin ("
            << input.size() << " bytes)\n";
}

int run_one(const std::vector<std::uint8_t>& input) {
  if (input.size() > kMaxInputBytes) return 0;
  return LLVMFuzzerTestOneInput(input.data(), input.size());
}

/// One seeded mutation of `base`. Mutation count scales with how far
/// into the run we are, like libFuzzer's energy schedule (roughly).
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> base,
                                 std::mt19937_64& rng) {
  if (base.empty()) base.push_back(0);
  const unsigned rounds = 1 + static_cast<unsigned>(rng() % 8);
  for (unsigned r = 0; r < rounds; ++r) {
    switch (rng() % 6) {
      case 0: {  // flip one bit
        const std::size_t i = rng() % base.size();
        base[i] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      }
      case 1: {  // overwrite a byte
        base[rng() % base.size()] = static_cast<std::uint8_t>(rng());
        break;
      }
      case 2: {  // truncate
        base.resize(rng() % (base.size() + 1));
        if (base.empty()) base.push_back(0);
        break;
      }
      case 3: {  // extend with random bytes
        const std::size_t n = 1 + rng() % 64;
        for (std::size_t i = 0; i < n && base.size() < kMaxInputBytes; ++i)
          base.push_back(static_cast<std::uint8_t>(rng()));
        break;
      }
      case 4: {  // stamp an interesting 32-bit value at a random offset
        static constexpr std::uint32_t kInteresting[] = {
            0x00000000u, 0x00000001u, 0x0000007Fu, 0x000000FFu,
            0x00007FFFu, 0x0000FFFFu, 0x7FFFFFFFu, 0x80000000u,
            0xFFFFFFFEu, 0xFFFFFFFFu};
        if (base.size() >= 4) {
          const std::uint32_t v =
              kInteresting[rng() % (sizeof(kInteresting) /
                                    sizeof(kInteresting[0]))];
          std::memcpy(&base[rng() % (base.size() - 3)], &v, 4);
        }
        break;
      }
      default: {  // duplicate a slice (splice-with-self)
        const std::size_t from = rng() % base.size();
        const std::size_t len =
            std::min<std::size_t>(1 + rng() % 32, base.size() - from);
        const std::size_t to = rng() % base.size();
        std::vector<std::uint8_t> slice(base.begin() +
                                            static_cast<long>(from),
                                        base.begin() +
                                            static_cast<long>(from + len));
        base.insert(base.begin() + static_cast<long>(to), slice.begin(),
                    slice.end());
        if (base.size() > kMaxInputBytes) base.resize(kMaxInputBytes);
        break;
      }
    }
  }
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  double smoke_seconds = 0.0;
  std::uint64_t seed = 0x6D656473656E21ULL;  // "medsen!"
  std::uint64_t max_iters = 0;               // 0 = bounded by time only
  std::vector<std::filesystem::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke-seconds" && i + 1 < argc) {
      smoke_seconds = std::stod(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--max-iters" && i + 1 < argc) {
      max_iters = std::stoull(argv[++i]);
    } else {
      inputs.emplace_back(arg);
    }
  }

  // Phase 1: replay the corpus (and any explicit reproducer files).
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& path : inputs) {
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file())
          corpus.push_back(read_file(entry.path()));
      }
    } else if (std::filesystem::is_regular_file(path)) {
      corpus.push_back(read_file(path));
    } else {
      std::cerr << "no such corpus input: " << path << "\n";
      return 2;
    }
  }
  if (corpus.empty()) {
    std::cerr << "usage: " << argv[0]
              << " [--smoke-seconds N] [--seed S] [--max-iters N] "
                 "CORPUS...\n";
    return 2;
  }

  std::size_t replayed = 0;
  for (const auto& input : corpus) {
    try {
      run_one(input);
      ++replayed;
    } catch (const std::exception& e) {
      std::cerr << "corpus replay failed: " << e.what() << "\n";
      dump_crash(input);
      return 1;
    }
  }
  std::printf("replayed %zu corpus inputs\n", replayed);

  // Phase 2: seeded mutational smoke fuzz.
  if (smoke_seconds > 0.0 || max_iters > 0) {
    std::mt19937_64 rng(seed);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(smoke_seconds));
    std::uint64_t iters = 0;
    while ((max_iters == 0 || iters < max_iters) &&
           (smoke_seconds <= 0.0 ||
            std::chrono::steady_clock::now() < deadline)) {
      const auto input = mutate(corpus[rng() % corpus.size()], rng);
      try {
        run_one(input);
      } catch (const std::exception& e) {
        std::cerr << "smoke fuzz failure at iteration " << iters
                  << " (seed " << seed << "): " << e.what() << "\n";
        dump_crash(input);
        return 1;
      }
      ++iters;
    }
    std::printf("smoke fuzz ran %llu iterations, no findings\n",
                static_cast<unsigned long long>(iters));
  }
  return 0;
}
