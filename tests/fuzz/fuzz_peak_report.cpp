// Fuzz target: core::PeakReport::deserialize — the analysis result the
// sensor decodes from the untrusted cloud, so the decoder runs inside
// the device TCB and must be unconditionally safe on hostile bytes.
//
// Property checked on accepted inputs: serialize(deserialize(x)) == x
// bit-for-bit (doubles travel as IEEE-754 bit patterns, so even NaN
// payloads must round-trip).

#include "fuzz_target.h"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>

#include "core/peak_report.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  medsen::core::PeakReport report;
  try {
    report = medsen::core::PeakReport::deserialize(input);
  } catch (const std::out_of_range&) {
    return 0;
  } catch (const std::runtime_error&) {
    return 0;
  }
  const auto round_trip = report.serialize();
  if (round_trip.size() != size ||
      !std::equal(round_trip.begin(), round_trip.end(), data))
    std::abort();
  return 0;
}
