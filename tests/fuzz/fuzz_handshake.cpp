// Fuzz target: the AuthChallenge/AuthResponse handshake payload
// decoders — the two messages a hostile relay can feed either end of
// the EV2-style session handshake. The first input byte selects the
// decoder (even = challenge, odd = response); the rest is the payload.
//
// Properties checked on accepted inputs:
//   * serialize(deserialize(x)) == x  (strict decoding is a bijection)
//   * rejection is always one of the two structured exception types
//     (trailing bytes and truncation must throw, never mis-decode)

#include "fuzz_target.h"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::uint8_t> body(data + 1, size - 1);
  std::vector<std::uint8_t> round_trip;
  try {
    if ((data[0] & 1) == 0) {
      const auto challenge = medsen::net::AuthChallengePayload::deserialize(body);
      round_trip = challenge.serialize();
    } else {
      const auto response = medsen::net::AuthResponsePayload::deserialize(body);
      round_trip = response.serialize();
    }
  } catch (const std::out_of_range&) {
    return 0;  // truncated
  } catch (const std::runtime_error&) {
    return 0;  // strictness rejection (trailing bytes)
  }

  if (round_trip.size() != body.size() ||
      !std::equal(round_trip.begin(), round_trip.end(), body.begin()))
    std::abort();  // accepted input failed to round-trip bit-identically
  return 0;
}
