// Fuzz target: net::Envelope::deserialize, plus the per-type payload
// decoders an accepted envelope routes to — the exact code path a
// hostile relay reaches at the CloudServer boundary.
//
// Properties checked on accepted inputs:
//   * serialize(deserialize(x)) == x  (strict decoding is a bijection
//     between accepted byte strings and envelopes)
//   * the payload decoder for the envelope's type either succeeds or
//     throws one of the two structured rejection types

#include "fuzz_target.h"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>

#include "net/messages.h"

namespace {

void try_payload(const medsen::net::Envelope& envelope) {
  using medsen::net::MessageType;
  const std::span<const std::uint8_t> payload(envelope.payload);
  switch (envelope.type) {
    case MessageType::kSignalUpload:
      (void)medsen::net::SignalUploadPayload::deserialize(payload);
      break;
    case MessageType::kAnalysisResult:
      // PeakReport decoding has its own target; the envelope target
      // stops at the envelope layer for this type.
      break;
    case MessageType::kAuthDecision:
      (void)medsen::net::AuthDecisionPayload::deserialize(payload);
      break;
    case MessageType::kError:
      (void)medsen::net::ErrorPayload::deserialize(payload);
      break;
    case MessageType::kAuthPass:
      (void)medsen::net::AuthPassPayload::deserialize(payload);
      break;
    case MessageType::kAuthChallenge:
      (void)medsen::net::AuthChallengePayload::deserialize(payload);
      break;
    case MessageType::kAuthResponse:
      (void)medsen::net::AuthResponsePayload::deserialize(payload);
      break;
    case MessageType::kProgress:
    default:
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  medsen::net::Envelope envelope;
  try {
    envelope = medsen::net::Envelope::deserialize(input);
  } catch (const std::out_of_range&) {
    return 0;  // truncated
  } catch (const std::runtime_error&) {
    return 0;  // strictness rejection
  }

  const auto round_trip = envelope.serialize();
  if (round_trip.size() != size ||
      !std::equal(round_trip.begin(), round_trip.end(), data))
    std::abort();  // accepted input failed to round-trip bit-identically

  try {
    try_payload(envelope);
  } catch (const std::out_of_range&) {
  } catch (const std::runtime_error&) {
  }
  return 0;
}
