// Fuzz target: net::frame_decode — the outermost parser every byte
// from the transport hits first.
//
// Property checked on accepted inputs: frame_encode(frame_decode(x))
// reproduces x exactly (the frame format has a single canonical
// encoding per payload).

#include "fuzz_target.h"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <stdexcept>

#include "net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  std::vector<std::uint8_t> payload;
  try {
    payload = medsen::net::frame_decode(input);
  } catch (const std::out_of_range&) {
    return 0;
  } catch (const std::runtime_error&) {
    return 0;
  }
  const auto re_encoded = medsen::net::frame_encode(payload);
  if (re_encoded.size() != size ||
      !std::equal(re_encoded.begin(), re_encoded.end(), data))
    std::abort();
  return 0;
}
