// Seed-corpus generator. The checked-in corpora under
// tests/fuzz/corpus/<target>/ were produced by this tool; re-run it
// after a wire-format change and commit the result:
//
//   cmake --build build --target make_corpus
//   ./build/tests/fuzz/make_corpus tests/fuzz/corpus

#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "compress/codec.h"
#include "core/peak_report.h"
#include "net/frame.h"
#include "net/messages.h"

namespace {

void write(const std::filesystem::path& dir, const std::string& name,
           const std::vector<std::uint8_t>& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> ascii(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_corpus <corpus-root>\n";
    return 2;
  }
  const std::filesystem::path root = argv[1];
  const std::vector<std::uint8_t> key = {1, 2, 3, 4, 5, 6, 7, 8};

  // --- envelope -------------------------------------------------------
  using medsen::net::MessageType;
  medsen::net::SignalUploadPayload upload;
  upload.compressed = false;
  upload.sample_rate_hz = 450.0;
  upload.data = {1, 2, 3, 4, 5, 6, 7, 8};
  write(root / "envelope", "upload.bin",
        medsen::net::make_envelope(MessageType::kSignalUpload, 7, 1,
                                   upload.serialize(), key)
            .serialize());

  medsen::net::AuthPassPayload pass;
  pass.upload = upload;
  pass.volume_ul = 0.75;
  pass.duration_s = 420.0;
  write(root / "envelope", "auth_pass.bin",
        medsen::net::make_envelope(MessageType::kAuthPass, 8, 2,
                                   pass.serialize(), key)
            .serialize());

  medsen::net::ErrorPayload error;
  error.code = medsen::net::ErrorCode::kQualityRejected;
  error.subcode = 3;
  error.detail = "saturated";
  write(root / "envelope", "error.bin",
        medsen::net::make_envelope(MessageType::kError, 9, 3,
                                   error.serialize(), key)
            .serialize());

  medsen::net::AuthDecisionPayload decision;
  decision.authenticated = true;
  decision.user_id = "alice";
  decision.distance = 0.25;
  write(root / "envelope", "decision.bin",
        medsen::net::make_envelope(MessageType::kAuthDecision, 10, 4,
                                   decision.serialize(), key)
            .serialize());

  write(root / "envelope", "empty_payload.bin",
        medsen::net::make_envelope(MessageType::kProgress, 0, 0, {}, key)
            .serialize());

  medsen::net::AuthChallengePayload challenge;
  challenge.key_epoch = 1;
  for (std::size_t i = 0; i < challenge.challenge.size(); ++i)
    challenge.challenge[i] = static_cast<std::uint8_t>(0xA0 + i);
  write(root / "envelope", "auth_challenge.bin",
        medsen::net::make_envelope(MessageType::kAuthChallenge, 11, 5,
                                   challenge.serialize(), key)
            .serialize());

  medsen::net::AuthResponsePayload handshake_response;
  for (std::size_t i = 0; i < handshake_response.challenge.size(); ++i) {
    handshake_response.challenge[i] = static_cast<std::uint8_t>(0xB0 + i);
    handshake_response.proof[i] = static_cast<std::uint8_t>(0xC0 + i);
  }
  write(root / "envelope", "auth_response.bin",
        medsen::net::make_envelope(MessageType::kAuthResponse, 11, 5,
                                   handshake_response.serialize(), key)
            .serialize());

  // A session-plane command: nonzero counter, MAC-covered.
  write(root / "envelope", "counter_upload.bin",
        medsen::net::make_envelope(MessageType::kSignalUpload, 11, 5,
                                   upload.serialize(), key, /*counter=*/3)
            .serialize());

  // --- handshake ------------------------------------------------------
  // First corpus byte selects the decoder: even = challenge, odd =
  // response (matching fuzz_handshake.cpp).
  {
    std::vector<std::uint8_t> seed;
    seed.push_back(0);
    const auto chal_bytes = challenge.serialize();
    seed.insert(seed.end(), chal_bytes.begin(), chal_bytes.end());
    write(root / "handshake", "challenge.bin", seed);

    seed.clear();
    seed.push_back(1);
    const auto resp_bytes = handshake_response.serialize();
    seed.insert(seed.end(), resp_bytes.begin(), resp_bytes.end());
    write(root / "handshake", "response.bin", seed);

    // Strictness probes: truncated and trailing-byte variants.
    seed.clear();
    seed.push_back(0);
    seed.insert(seed.end(), chal_bytes.begin(), chal_bytes.end() - 1);
    write(root / "handshake", "challenge_truncated.bin", seed);

    seed.clear();
    seed.push_back(1);
    seed.insert(seed.end(), resp_bytes.begin(), resp_bytes.end());
    seed.push_back(0xFF);
    write(root / "handshake", "response_trailing.bin", seed);
  }

  // --- frame ----------------------------------------------------------
  write(root / "frame", "empty.bin", medsen::net::frame_encode({}));
  write(root / "frame", "short.bin",
        medsen::net::frame_encode(ascii("hello")));
  write(root / "frame", "envelope.bin",
        medsen::net::frame_encode(
            medsen::net::make_envelope(MessageType::kSignalUpload, 1, 1,
                                       upload.serialize(), key)
                .serialize()));

  // --- codec ----------------------------------------------------------
  write(root / "codec", "empty.bin", medsen::compress::compress({}));
  write(root / "codec", "text.bin",
        medsen::compress::compress_string(
            "time,ch0,ch1\n0.000,1.002,0.998\n0.002,1.001,0.999\n"));
  write(root / "codec", "single.bin", medsen::compress::compress(
                                          std::vector<std::uint8_t>{42}));
  std::vector<std::uint8_t> repetitive;
  for (int i = 0; i < 512; ++i)
    repetitive.push_back(static_cast<std::uint8_t>(i % 7));
  write(root / "codec", "repetitive.bin",
        medsen::compress::compress(repetitive));

  // --- peak_report ----------------------------------------------------
  medsen::core::PeakReport report;
  medsen::core::ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  ch.peaks = {{1.0, 0.01, 0.02, 450}, {2.0, 0.02, 0.03, 900}};
  report.channels.push_back(ch);
  ch.carrier_hz = 2.0e6;
  ch.peaks = {{1.5, 0.005, 0.02, 675}};
  report.channels.push_back(ch);
  write(root / "peak_report", "two_channels.bin", report.serialize());
  write(root / "peak_report", "empty.bin",
        medsen::core::PeakReport{}.serialize());

  std::cout << "corpora written under " << root << "\n";
  return 0;
}
