#pragma once
// Common entry-point contract for the MedSen fuzz harnesses.
//
// Every target defines LLVMFuzzerTestOneInput (the libFuzzer ABI). With
// clang the CMake config links -fsanitize=fuzzer and libFuzzer drives
// the loop; elsewhere (the CI default toolchain is gcc, which ships no
// libFuzzer) the target links standalone_driver.cpp, which replays
// corpus files and runs a seeded, deterministic mutational smoke fuzz
// against the same entry point.
//
// Targets must treat *only* the two structured exception types as
// "input rejected": std::out_of_range (truncation, hostile counts) and
// std::runtime_error (strictness: magic/CRC/MAC/trailing-byte checks).
// Anything else — std::bad_alloc from an unbounded reserve, a
// std::logic_error, a sanitizer report, a crash — is a finding.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
