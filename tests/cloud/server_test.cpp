#include "cloud/server.h"

#include "compress/codec.h"

#include <gtest/gtest.h>

#include <cmath>

namespace medsen::cloud {
namespace {

const std::vector<std::uint8_t> kMacKey = {1, 2, 3, 4};

CloudServer make_server() {
  return CloudServer(AnalysisConfig{}, auth::CytoAlphabet{},
                     auth::ParticleClassifier::train({}));
}

util::MultiChannelSeries dip_series(std::size_t dips) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  const std::size_t n = 4500 + dips * 450;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (std::size_t d = 0; d < dips; ++d) {
      const double z = (t - (5.0 + static_cast<double>(d))) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    // A grain of quantized (ADC-like) noise so the quality gate's
    // stuck-ADC detector sees a live signal while the samples stay
    // compressible.
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

net::Envelope upload_of(const util::MultiChannelSeries& series,
                        std::uint64_t session) {
  net::SignalUploadPayload payload;
  payload.compressed = false;
  payload.sample_rate_hz = 450.0;
  payload.data = net::serialize_series(series);
  return net::make_envelope(net::MessageType::kSignalUpload, session,
                            payload.serialize(), kMacKey);
}

TEST(CloudServer, HandleUploadReturnsReport) {
  auto server = make_server();
  const auto response =
      server.handle_upload(upload_of(dip_series(3), 5), kMacKey);
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(response.session_id, 5u);
  EXPECT_TRUE(net::verify_envelope(response, kMacKey));
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 3u);
}

TEST(CloudServer, RejectsBadMac) {
  auto server = make_server();
  auto upload = upload_of(dip_series(1), 1);
  upload.payload[0] ^= 0xFF;
  EXPECT_THROW(server.handle_upload(upload, kMacKey), std::runtime_error);
}

TEST(CloudServer, RejectsWrongMessageType) {
  auto server = make_server();
  const auto envelope =
      net::make_envelope(net::MessageType::kProgress, 1, {}, kMacKey);
  EXPECT_THROW(server.handle_upload(envelope, kMacKey), std::runtime_error);
}

TEST(CloudServer, CompressedUploadAccepted) {
  auto server = make_server();
  const auto series = dip_series(2);
  net::SignalUploadPayload payload;
  payload.compressed = true;
  payload.sample_rate_hz = 450.0;
  payload.data = compress::compress(net::serialize_series(series));
  const auto upload = net::make_envelope(net::MessageType::kSignalUpload, 9,
                                         payload.serialize(), kMacKey);
  const auto response = server.handle_upload(upload, kMacKey);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 2u);
}

TEST(CloudServer, QualityGateRejectsGarbage) {
  auto server = make_server();
  // A clipped/flat-lined acquisition must be refused, not analyzed.
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(5000, 2.5));
  net::SignalUploadPayload payload;
  payload.data = net::serialize_series(series);
  const auto upload = net::make_envelope(net::MessageType::kSignalUpload, 1,
                                         payload.serialize(), kMacKey);
  EXPECT_THROW(server.handle_upload(upload, kMacKey), std::runtime_error);
  EXPECT_FALSE(server.last_quality().acceptable);

  server.set_quality_gate(false);
  EXPECT_NO_THROW(server.handle_upload(upload, kMacKey));
}

TEST(CloudServer, DuplicateUploadServedFromCacheNotReanalyzed) {
  auto server = make_server();
  const auto upload = upload_of(dip_series(3), 5);
  const auto first = server.handle_upload(upload, kMacKey);
  EXPECT_EQ(server.requests_processed(), 1u);

  // The reliable transport re-uploads when the response is lost; the
  // replay must return the identical envelope without a second analysis.
  const auto second = server.handle_upload(upload, kMacKey);
  EXPECT_EQ(server.requests_processed(), 1u);
  EXPECT_EQ(server.replays_served(), 1u);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_TRUE(crypto::digest_equal(second.mac, first.mac));
}

TEST(CloudServer, SessionReplayWithDifferentPayloadRejected) {
  auto server = make_server();
  (void)server.handle_upload(upload_of(dip_series(3), 5), kMacKey);
  // Same session_id, different acquisition: a protocol violation, not a
  // transport retry.
  EXPECT_THROW(server.handle_upload(upload_of(dip_series(2), 5), kMacKey),
               std::runtime_error);
  EXPECT_EQ(server.requests_processed(), 1u);
}

TEST(CloudServer, DuplicateAuthServedFromCache) {
  auto server = make_server();
  const auto upload = upload_of(dip_series(2), 3);
  const auto first = server.handle_auth(upload, 1.0, kMacKey);
  const auto second = server.handle_auth(upload, 1.0, kMacKey);
  EXPECT_EQ(server.requests_processed(), 1u);
  EXPECT_EQ(server.replays_served(), 1u);
  EXPECT_EQ(second.payload, first.payload);
}

TEST(CloudServer, RejectedUploadIsNotCached) {
  auto server = make_server();
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(5000, 2.5));
  net::SignalUploadPayload payload;
  payload.data = net::serialize_series(series);
  const auto upload = net::make_envelope(net::MessageType::kSignalUpload, 8,
                                         payload.serialize(), kMacKey);
  EXPECT_THROW(server.handle_upload(upload, kMacKey), std::runtime_error);
  EXPECT_EQ(server.requests_processed(), 0u);
  // A retry after the gate is lifted reprocesses instead of replaying
  // the failure.
  server.set_quality_gate(false);
  EXPECT_NO_THROW(server.handle_upload(upload, kMacKey));
  EXPECT_EQ(server.requests_processed(), 1u);
}

TEST(CloudServer, RecordStoreAccessible) {
  auto server = make_server();
  auth::CytoCode code;
  code.levels = {1, 1};
  server.store_result(code, {1, {0xCC}});
  EXPECT_EQ(server.records().record_count(), 1u);
}

TEST(CloudServer, AuthDecisionForUnknownUserRejected) {
  auto server = make_server();
  // No enrollments: any census must fail authentication.
  const auto response =
      server.handle_auth(upload_of(dip_series(2), 3), 1.0, kMacKey);
  EXPECT_EQ(response.type, net::MessageType::kAuthDecision);
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  EXPECT_FALSE(decision.authenticated);
}

}  // namespace
}  // namespace medsen::cloud
