#include "cloud/server.h"

#include "compress/codec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

namespace medsen::cloud {
namespace {

const std::vector<std::uint8_t> kMacKey = {1, 2, 3, 4};
constexpr std::uint64_t kDevice = 1;

CloudServer make_server(ServiceConfig service = {}) {
  return CloudServer(AnalysisConfig{}, auth::CytoAlphabet{},
                     auth::ParticleClassifier::train({}),
                     auth::VerifierConfig{}, nullptr, service);
}

util::MultiChannelSeries dip_series(std::size_t dips) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  const std::size_t n = 4500 + dips * 450;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (std::size_t d = 0; d < dips; ++d) {
      const double z = (t - (5.0 + static_cast<double>(d))) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    // A grain of quantized (ADC-like) noise so the quality gate's
    // stuck-ADC detector sees a live signal while the samples stay
    // compressible.
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

// A flat-lined acquisition pinned outside the plausible range: the gate
// flags it as saturated (the first check that fires).
util::MultiChannelSeries saturated_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(5000, 2.5));
  return series;
}

// In-range but stuck at a constant value: a dead ADC, not clipping.
util::MultiChannelSeries dropout_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(5000, 1.0));
  return series;
}

// A live signal whose baseline wanders beyond the drift budget.
util::MultiChannelSeries drifting_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  for (std::size_t i = 0; i < 5000; ++i) {
    double v = 0.9 + 0.45 * static_cast<double>(i) / 5000.0;
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

net::Envelope upload_of(const util::MultiChannelSeries& series,
                        std::uint64_t session,
                        std::uint64_t device = kDevice,
                        std::span<const std::uint8_t> key = kMacKey) {
  net::SignalUploadPayload payload;
  payload.compressed = false;
  payload.sample_rate_hz = 450.0;
  payload.data = net::serialize_series(series);
  return net::make_envelope(net::MessageType::kSignalUpload, session, device,
                            payload.serialize(), key);
}

net::Envelope auth_of(const util::MultiChannelSeries& series,
                      std::uint64_t session, double volume_ul,
                      double duration_s = 0.0) {
  net::AuthPassPayload pass;
  pass.upload.compressed = false;
  pass.upload.sample_rate_hz = 450.0;
  pass.upload.data = net::serialize_series(series);
  pass.volume_ul = volume_ul;
  pass.duration_s = duration_s;
  return net::make_envelope(net::MessageType::kAuthPass, session, kDevice,
                            pass.serialize(), kMacKey);
}

net::ErrorPayload expect_error(const net::Envelope& response,
                               net::ErrorCode code) {
  EXPECT_EQ(response.type, net::MessageType::kError);
  const auto error = net::ErrorPayload::deserialize(response.payload);
  EXPECT_EQ(error.code, code) << "detail: " << error.detail;
  return error;
}

TEST(CloudServer, HandleUploadReturnsReport) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto response = server.handle(upload_of(dip_series(3), 5));
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(response.session_id, 5u);
  EXPECT_EQ(response.device_id, kDevice);
  EXPECT_TRUE(net::verify_envelope(response, kMacKey));
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 3u);
}

TEST(CloudServer, UnknownDeviceGetsError) {
  auto server = make_server();
  // Nothing provisioned: the request is refused before MAC verification
  // (the server has no key to check against), and the error is unsigned
  // — the server holds no credential for the unknown sender.
  const auto response = server.handle(upload_of(dip_series(1), 1));
  const auto error =
      expect_error(response, net::ErrorCode::kUnknownDevice);
  EXPECT_NE(error.detail.find("not provisioned"), std::string::npos);
  EXPECT_TRUE(net::verify_envelope(response, {}));
}

TEST(CloudServer, BadMacGetsError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  auto upload = upload_of(dip_series(1), 1);
  upload.payload[0] ^= 0xFF;
  const auto response = server.handle(upload);
  expect_error(response, net::ErrorCode::kBadMac);
  EXPECT_TRUE(net::verify_envelope(response, kMacKey));
}

TEST(CloudServer, WrongDeviceKeyGetsBadMacError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  server.provision_device(2, {9, 9, 9});
  // Device 2 signing with device 1's key: the registry key wins.
  const auto response =
      server.handle(upload_of(dip_series(1), 1, 2, kMacKey));
  expect_error(response, net::ErrorCode::kBadMac);
}

TEST(CloudServer, UnroutableTypeGetsMalformedError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto envelope = net::make_envelope(net::MessageType::kProgress, 1,
                                           kDevice, {}, kMacKey);
  expect_error(server.handle(envelope), net::ErrorCode::kMalformed);
}

TEST(CloudServer, UndecodablePayloadGetsMalformedError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  // A correctly MAC'd envelope whose payload is garbage: the decoder
  // throw must be converted at the dispatch boundary, not escape.
  const auto envelope = net::make_envelope(
      net::MessageType::kSignalUpload, 1, kDevice, {0xDE, 0xAD}, kMacKey);
  expect_error(server.handle(envelope), net::ErrorCode::kMalformed);
}

TEST(CloudServer, TruncatedPayloadGetsMalformedError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  net::SignalUploadPayload payload;
  payload.data = net::serialize_series(dip_series(1));
  auto bytes = payload.serialize();
  bytes.resize(bytes.size() / 2);  // cut mid-payload, then re-MAC
  const auto envelope = net::make_envelope(net::MessageType::kSignalUpload, 3,
                                           kDevice, std::move(bytes), kMacKey);
  expect_error(server.handle(envelope), net::ErrorCode::kMalformed);
}

TEST(CloudServer, TrailingPayloadBytesGetMalformedError) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  net::SignalUploadPayload payload;
  payload.data = net::serialize_series(dip_series(1));
  auto bytes = payload.serialize();
  bytes.push_back(0x00);  // strict decoders refuse appended garbage
  const auto envelope = net::make_envelope(net::MessageType::kSignalUpload, 4,
                                           kDevice, std::move(bytes), kMacKey);
  expect_error(server.handle(envelope), net::ErrorCode::kMalformed);
}

TEST(CloudServer, BitFlippedPayloadNeverEscapesAsException) {
  // Re-MAC a bit-flipped payload (a hostile relay could do the same with
  // a stolen key): whatever the decoder makes of it, the service
  // boundary must answer with an envelope, not throw.
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  net::SignalUploadPayload payload;
  payload.sample_rate_hz = 450.0;
  payload.data = net::serialize_series(dip_series(1));
  const auto bytes = payload.serialize();
  for (std::size_t bit = 0; bit < 64; ++bit) {
    auto corrupted = bytes;
    corrupted[(bit * 131) % corrupted.size()] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    const auto envelope =
        net::make_envelope(net::MessageType::kSignalUpload, 100 + bit,
                           kDevice, std::move(corrupted), kMacKey);
    net::Envelope response;
    EXPECT_NO_THROW(response = server.handle(envelope)) << "bit " << bit;
  }
}

TEST(CloudServer, HostileSeriesCountGetsMalformedError) {
  // A payload declaring 2^32-1 channels must be shot down by the decoder
  // bounds check and surface as kMalformed — not as an OOM.
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  net::SignalUploadPayload payload;
  payload.data = {0xFF, 0xFF, 0xFF, 0xFF};
  const auto envelope =
      net::make_envelope(net::MessageType::kSignalUpload, 6, kDevice,
                         payload.serialize(), kMacKey);
  expect_error(server.handle(envelope), net::ErrorCode::kMalformed);
}

TEST(CloudServer, CompressedUploadAccepted) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto series = dip_series(2);
  net::SignalUploadPayload payload;
  payload.compressed = true;
  payload.sample_rate_hz = 450.0;
  payload.data = compress::compress(net::serialize_series(series));
  const auto upload = net::make_envelope(net::MessageType::kSignalUpload, 9,
                                         kDevice, payload.serialize(),
                                         kMacKey);
  const auto response = server.handle(upload);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 2u);
}

TEST(CloudServer, QualityRejectionsCarryDistinctReasons) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto saturated =
      expect_error(server.handle(upload_of(saturated_series(), 1)),
                   net::ErrorCode::kQualityRejected);
  EXPECT_EQ(saturated.subcode,
            static_cast<std::uint8_t>(QualityReason::kSaturated));
  const auto dropout =
      expect_error(server.handle(upload_of(dropout_series(), 2)),
                   net::ErrorCode::kQualityRejected);
  EXPECT_EQ(dropout.subcode,
            static_cast<std::uint8_t>(QualityReason::kDropout));
  const auto drift =
      expect_error(server.handle(upload_of(drifting_series(), 3)),
                   net::ErrorCode::kQualityRejected);
  EXPECT_EQ(drift.subcode,
            static_cast<std::uint8_t>(QualityReason::kDrift));
  // Three distinct structured reasons reached the client.
  EXPECT_NE(saturated.subcode, dropout.subcode);
  EXPECT_NE(dropout.subcode, drift.subcode);
  EXPECT_EQ(server.stats().errors_returned, 3u);
}

TEST(CloudServer, QualityGateTogglable) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  expect_error(server.handle(upload_of(saturated_series(), 1)),
               net::ErrorCode::kQualityRejected);
  server.set_quality_gate(false);
  const auto response = server.handle(upload_of(saturated_series(), 2));
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
}

TEST(CloudServer, DuplicateUploadServedFromCacheNotReanalyzed) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto upload = upload_of(dip_series(3), 5);
  const auto first = server.handle(upload);
  EXPECT_EQ(server.requests_processed(), 1u);

  // The reliable transport re-uploads when the response is lost; the
  // replay must return the identical envelope without a second analysis.
  const auto second = server.handle(upload);
  EXPECT_EQ(server.requests_processed(), 1u);
  EXPECT_EQ(server.replays_served(), 1u);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_TRUE(crypto::digest_equal(second.mac, first.mac));
}

TEST(CloudServer, SessionReplayWithDifferentPayloadRejected) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  (void)server.handle(upload_of(dip_series(3), 5));
  // Same session_id, different acquisition: a protocol violation, not a
  // transport retry.
  expect_error(server.handle(upload_of(dip_series(2), 5)),
               net::ErrorCode::kSessionConflict);
  EXPECT_EQ(server.requests_processed(), 1u);
}

TEST(CloudServer, DuplicateAuthServedFromCache) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto upload = auth_of(dip_series(2), 3, 1.0);
  const auto first = server.handle(upload);
  const auto second = server.handle(upload);
  EXPECT_EQ(first.type, net::MessageType::kAuthDecision);
  EXPECT_EQ(server.requests_processed(), 1u);
  EXPECT_EQ(server.replays_served(), 1u);
  EXPECT_EQ(second.payload, first.payload);
}

TEST(CloudServer, RejectedUploadIsNotCached) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  const auto upload = upload_of(saturated_series(), 8);
  expect_error(server.handle(upload), net::ErrorCode::kQualityRejected);
  EXPECT_EQ(server.requests_processed(), 0u);
  // A retry after the gate is lifted reprocesses instead of replaying
  // the failure.
  server.set_quality_gate(false);
  const auto response = server.handle(upload);
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(server.requests_processed(), 1u);
  EXPECT_EQ(server.replays_served(), 0u);
}

TEST(CloudServer, AdmissionLimitShedsWithOverloadedError) {
  auto server = make_server({/*quality_gate=*/true, /*max_inflight=*/2});
  server.provision_device(kDevice, kMacKey);
  // Fill the admission gate from the outside so the shed is
  // deterministic, no timing games needed.
  auto slot1 = server.admission().try_enter();
  auto slot2 = server.admission().try_enter();
  ASSERT_TRUE(slot1.admitted());
  ASSERT_TRUE(slot2.admitted());

  const auto response = server.handle(upload_of(dip_series(1), 1));
  expect_error(response, net::ErrorCode::kOverloaded);
  EXPECT_TRUE(net::verify_envelope(response, kMacKey));
  EXPECT_EQ(server.stats().requests_shed, 1u);

  slot1.release();
  const auto retried = server.handle(upload_of(dip_series(1), 2));
  EXPECT_EQ(retried.type, net::MessageType::kAnalysisResult);
}

TEST(CloudServer, MultiTenantSessionsAreIsolated) {
  auto server = make_server();
  const std::vector<std::uint8_t> key_a = {0xA};
  const std::vector<std::uint8_t> key_b = {0xB};
  server.provision_device(1, key_a);
  server.provision_device(2, key_b);
  // The same session_id on two devices must not collide in the cache.
  const auto a = server.handle(upload_of(dip_series(1), 7, 1, key_a));
  const auto b = server.handle(upload_of(dip_series(2), 7, 2, key_b));
  EXPECT_EQ(a.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(b.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(server.requests_processed(), 2u);
  EXPECT_EQ(server.replays_served(), 0u);
  EXPECT_EQ(core::PeakReport::deserialize(a.payload).reference_peak_count(),
            1u);
  EXPECT_EQ(core::PeakReport::deserialize(b.payload).reference_peak_count(),
            2u);
}

TEST(CloudServer, DeviceRevocationTakesEffect) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  EXPECT_EQ(server.handle(upload_of(dip_series(1), 1)).type,
            net::MessageType::kAnalysisResult);
  server.devices().revoke(kDevice);
  expect_error(server.handle(upload_of(dip_series(1), 2)),
               net::ErrorCode::kRevoked);
}

// The TSan regression for the old racy `last_quality_` member: one
// server, several client threads, a mix of accepted and quality-rejected
// uploads in flight at once. Before the refactor the quality report was
// written to an unsynchronized member on every upload.
TEST(CloudServer, ConcurrentMixedUploadsAreRaceFree) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::vector<std::thread> workers;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t session =
            100 + static_cast<std::uint64_t>(t * kPerThread + i);
        const bool bad = (t + i) % 2 == 0;
        const auto response = server.handle(
            bad ? upload_of(saturated_series(), session)
                : upload_of(dip_series(1), session));
        if (response.type == net::MessageType::kAnalysisResult)
          accepted.fetch_add(1);
        else if (net::ErrorPayload::deserialize(response.payload).code ==
                 net::ErrorCode::kQualityRejected)
          rejected.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(server.requests_processed(),
            static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(server.stats().errors_returned,
            static_cast<std::uint64_t>(rejected.load()));
}

TEST(CloudServer, RecordStoreAccessible) {
  auto server = make_server();
  auth::CytoCode code;
  code.levels = {1, 1};
  server.store_result(code, {1, {0xCC}});
  EXPECT_EQ(server.records().record_count(), 1u);
}

TEST(CloudServer, AuthDecisionForUnknownUserRejected) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  // No enrollments: any census must fail authentication.
  const auto response = server.handle(auth_of(dip_series(2), 3, 1.0));
  EXPECT_EQ(response.type, net::MessageType::kAuthDecision);
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  EXPECT_FALSE(decision.authenticated);
}

TEST(CloudServer, StatsAccumulateProcessingTime) {
  auto server = make_server();
  server.provision_device(kDevice, kMacKey);
  (void)server.handle(upload_of(dip_series(1), 1));
  (void)server.handle(upload_of(dip_series(2), 2));
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests_processed, 2u);
  EXPECT_GT(stats.processing_time_s, 0.0);
}

}  // namespace
}  // namespace medsen::cloud
