#include "cloud/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/fileio.h"

namespace medsen::cloud {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  std::string temp_path(const char* name) {
    return std::string(::testing::TempDir()) + "/medsen_" + name;
  }
  void TearDown() override {
    for (const auto& path : created_) std::remove(path.c_str());
  }
  std::string track(std::string path) {
    created_.push_back(path);
    return path;
  }
  std::vector<std::string> created_;
};

auth::CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  auth::CytoCode code;
  code.levels = levels;
  return code;
}

TEST_F(PersistenceTest, EnrollmentsRoundTrip) {
  auth::EnrollmentDatabase db{auth::CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  db.enroll("bob", code_of({3, 0}));
  const auto path = track(temp_path("enroll.bin"));
  save_enrollments(db, path);

  const auto loaded = load_enrollments(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.lookup(code_of({1, 2})), "alice");
  EXPECT_EQ(loaded.lookup(code_of({3, 0})), "bob");
  EXPECT_EQ(loaded.alphabet().levels(), db.alphabet().levels());
}

TEST_F(PersistenceTest, CustomAlphabetSurvives) {
  auth::CytoAlphabet alphabet;
  alphabet.concentration_levels_per_ul = {0.0, 200.0, 600.0};
  auth::EnrollmentDatabase db{alphabet};
  db.enroll("carol", code_of({2, 1}));
  const auto path = track(temp_path("enroll2.bin"));
  save_enrollments(db, path);
  const auto loaded = load_enrollments(path);
  EXPECT_EQ(loaded.alphabet().levels(), 3u);
  EXPECT_DOUBLE_EQ(loaded.alphabet().concentration_levels_per_ul[2], 600.0);
}

TEST_F(PersistenceTest, RecordsRoundTrip) {
  RecordStore store;
  store.store(code_of({1, 1}), {10, {1, 2, 3}});
  store.store(code_of({1, 1}), {11, {4}});
  store.store(code_of({0, 2}), {12, {}});
  const auto path = track(temp_path("records.bin"));
  save_records(store, path);

  const auto loaded = load_records(path);
  EXPECT_EQ(loaded.record_count(), 3u);
  EXPECT_EQ(loaded.fetch(code_of({1, 1})).size(), 2u);
  EXPECT_EQ(loaded.latest(code_of({1, 1}))->session_id, 11u);
  EXPECT_EQ(loaded.fetch(code_of({1, 1}))[0].encrypted_result,
            (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(PersistenceTest, EmptyStoresRoundTrip) {
  const auto epath = track(temp_path("empty_enroll.bin"));
  save_enrollments(auth::EnrollmentDatabase{auth::CytoAlphabet{}}, epath);
  EXPECT_EQ(load_enrollments(epath).size(), 0u);

  const auto rpath = track(temp_path("empty_records.bin"));
  save_records(RecordStore{}, rpath);
  EXPECT_EQ(load_records(rpath).record_count(), 0u);
}

TEST_F(PersistenceTest, CorruptedFileRejected) {
  auth::EnrollmentDatabase db{auth::CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  const auto path = track(temp_path("corrupt.bin"));
  save_enrollments(db, path);
  auto bytes = util::read_file(path);
  bytes[bytes.size() / 2] ^= 0xFF;
  util::write_file(path, bytes);
  EXPECT_THROW((void)load_enrollments(path), std::runtime_error);
}

TEST_F(PersistenceTest, WrongMagicRejected) {
  RecordStore store;
  store.store(code_of({1, 1}), {1, {9}});
  const auto path = track(temp_path("wrongmagic.bin"));
  save_records(store, path);
  // Records file loaded as enrollments must be refused.
  EXPECT_THROW((void)load_enrollments(path), std::runtime_error);
}

TEST_F(PersistenceTest, MissingFileThrows) {
  EXPECT_THROW((void)load_records(temp_path("does_not_exist.bin")),
               std::runtime_error);
}

TEST(FileIo, RoundTripAndExists) {
  const std::string path =
      std::string(::testing::TempDir()) + "/medsen_fileio.bin";
  const std::vector<std::uint8_t> data = {0, 1, 255, 42};
  util::write_file(path, data);
  EXPECT_TRUE(util::file_exists(path));
  EXPECT_EQ(util::read_file(path), data);
  std::remove(path.c_str());
  EXPECT_FALSE(util::file_exists(path));
}

}  // namespace
}  // namespace medsen::cloud
