#include "cloud/analysis_service.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"

namespace medsen::cloud {
namespace {

util::MultiChannelSeries series_with_dips(std::size_t n,
                                          const std::vector<double>& at,
                                          double depth) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5, 2.0e6};
  for (int ch = 0; ch < 2; ++ch) {
    util::TimeSeries ts(450.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / 450.0;
      double v = 1.0 + 2e-5 * static_cast<double>(i);  // drift
      for (double center : at) {
        const double z = (t - center) / 0.008;
        v *= 1.0 - depth * std::exp(-0.5 * z * z);
      }
      ts.push_back(v);
    }
    series.channels.push_back(std::move(ts));
  }
  return series;
}

TEST(AnalysisService, FindsPeaksOnEveryChannel) {
  AnalysisService service;
  const auto series = series_with_dips(9000, {5.0, 10.0, 15.0}, 0.01);
  const auto report = service.analyze(series);
  ASSERT_EQ(report.channels.size(), 2u);
  EXPECT_EQ(report.channels[0].peaks.size(), 3u);
  EXPECT_EQ(report.channels[1].peaks.size(), 3u);
  EXPECT_DOUBLE_EQ(report.channels[0].carrier_hz, 5.0e5);
}

TEST(AnalysisService, PeakTimesAccurate) {
  AnalysisService service;
  const auto series = series_with_dips(9000, {7.5}, 0.012);
  const auto report = service.analyze(series);
  ASSERT_EQ(report.channels[0].peaks.size(), 1u);
  EXPECT_NEAR(report.channels[0].peaks[0].time_s, 7.5, 0.02);
  EXPECT_NEAR(report.channels[0].peaks[0].amplitude, 0.012, 0.004);
}

TEST(AnalysisService, StatsPopulated) {
  AnalysisService service;
  const auto series = series_with_dips(4500, {5.0}, 0.01);
  (void)service.analyze(series);
  EXPECT_EQ(service.stats().samples_processed, 9000u);
  EXPECT_EQ(service.stats().peaks_found, 2u);
  EXPECT_GT(service.stats().processing_time_s, 0.0);
}

TEST(AnalysisService, DriftAloneYieldsNoPeaks) {
  AnalysisService service;
  const auto series = series_with_dips(9000, {}, 0.0);
  const auto report = service.analyze(series);
  EXPECT_TRUE(report.channels[0].peaks.empty());
}

TEST(AnalysisService, AdaptiveThresholdHandlesNoiseSpread) {
  // The same 1.2% dips on a quiet and on a noisy channel: a fixed
  // threshold tuned for one misbehaves on the other; the adaptive mode
  // nails both without retuning.
  crypto::ChaChaRng rng(42);
  auto make = [&](double noise_sigma) {
    util::MultiChannelSeries series;
    series.carrier_frequencies_hz = {5.0e5};
    util::TimeSeries ts(450.0);
    for (std::size_t i = 0; i < 9000; ++i) {
      const double t = static_cast<double>(i) / 450.0;
      double v = 1.0;
      for (double center : {5.0, 10.0, 15.0}) {
        const double z = (t - center) / 0.008;
        v *= 1.0 - 0.012 * std::exp(-0.5 * z * z);
      }
      ts.push_back(v + rng.normal(0.0, noise_sigma));
    }
    series.channels.push_back(std::move(ts));
    return series;
  };

  AnalysisConfig config;
  config.adaptive_threshold = true;
  AnalysisService service(config);
  EXPECT_EQ(service.analyze(make(5e-5)).reference_peak_count(), 3u);
  EXPECT_EQ(service.analyze(make(4e-4)).reference_peak_count(), 3u);
}

TEST(AnalysisService, EmptySeries) {
  AnalysisService service;
  util::MultiChannelSeries series;
  const auto report = service.analyze(series);
  EXPECT_TRUE(report.channels.empty());
  EXPECT_EQ(service.stats().samples_processed, 0u);
}

}  // namespace
}  // namespace medsen::cloud
