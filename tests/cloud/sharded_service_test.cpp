// The sharded service layer's concurrency contract: deterministic
// shard routing, tenant isolation across shards, LRU bounding of the
// idempotent session cache, and a many-thread hammer that TSan (the
// `cloud` sanitizer label) can chew on. CloudServer::handle() semantics
// themselves are pinned by server_test.cpp — these tests cover what
// sharding added, not what it must not have changed.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "cloud/server.h"
#include "cloud/session_cache.h"
#include "util/sharded.h"

namespace medsen::cloud {
namespace {

const std::vector<std::uint8_t> kMacKey = {1, 2, 3, 4};

CloudServer make_server(ServiceConfig service = {}) {
  return CloudServer(AnalysisConfig{}, auth::CytoAlphabet{},
                     auth::ParticleClassifier::train({}),
                     auth::VerifierConfig{}, nullptr, service);
}

util::MultiChannelSeries dip_series(std::size_t dips) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  const std::size_t n = 4500 + dips * 450;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (std::size_t d = 0; d < dips; ++d) {
      const double z = (t - (5.0 + static_cast<double>(d))) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

net::Envelope upload_of(const util::MultiChannelSeries& series,
                        std::uint64_t session, std::uint64_t device,
                        std::span<const std::uint8_t> key) {
  net::SignalUploadPayload payload;
  payload.compressed = false;
  payload.sample_rate_hz = 450.0;
  payload.data = net::serialize_series(series);
  return net::make_envelope(net::MessageType::kSignalUpload, session, device,
                            payload.serialize(), key);
}

// --- Shard routing -------------------------------------------------------

TEST(ShardedService, RegistryRoutingIsDeterministicAcrossInstances) {
  const DeviceRegistry a(8);
  const DeviceRegistry b(8);
  ASSERT_EQ(a.shard_count(), b.shard_count());
  for (std::uint64_t device = 0; device < 500; ++device) {
    EXPECT_EQ(a.shard_of(device), b.shard_of(device)) << device;
    // Routing is the published FNV-1a contract, not an implementation
    // accident: operators plan shard balance around it.
    EXPECT_EQ(a.shard_of(device),
              static_cast<std::size_t>(util::fnv1a64(device)) &
                  (a.shard_count() - 1));
  }
}

TEST(ShardedService, ServerHonorsConfiguredShardCount) {
  ServiceConfig service;
  service.shards = 8;
  auto server = make_server(service);
  EXPECT_EQ(server.devices().shard_count(), 8u);
  EXPECT_EQ(server.session_cache().shard_count(), 8u);
  EXPECT_EQ(server.records().shard_count(), 8u);

  ServiceConfig single;
  single.shards = 1;
  auto baseline = make_server(single);
  EXPECT_EQ(baseline.devices().shard_count(), 1u);
}

// --- Tenant isolation across shards --------------------------------------

TEST(ShardedService, DevicesOnDifferentShardsAreIsolated) {
  ServiceConfig service;
  service.shards = 4;
  auto server = make_server(service);

  // Pick two devices that provably land on different shards.
  const std::uint64_t device_a = 1;
  std::uint64_t device_b = 2;
  while (server.devices().shard_of(device_b) ==
         server.devices().shard_of(device_a))
    ++device_b;
  const std::vector<std::uint8_t> key_a = {0xA0, 0xA1};
  const std::vector<std::uint8_t> key_b = {0xB0, 0xB1};
  server.provision_device(device_a, key_a);
  server.provision_device(device_b, key_b);

  const auto series = dip_series(2);
  const auto response_a = server.handle(upload_of(series, 1, device_a, key_a));
  const auto response_b = server.handle(upload_of(series, 1, device_b, key_b));
  EXPECT_EQ(response_a.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(response_b.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(response_a.device_id, device_a);
  EXPECT_EQ(response_b.device_id, device_b);
  // Each response is MAC'd with its own tenant's key, never the other's.
  EXPECT_TRUE(net::verify_envelope(response_a, key_a));
  EXPECT_FALSE(net::verify_envelope(response_a, key_b));
  EXPECT_TRUE(net::verify_envelope(response_b, key_b));

  // Revoking one tenant must not disturb the other, same or other shard.
  EXPECT_TRUE(server.devices().revoke(device_a));
  const auto after = server.handle(upload_of(series, 2, device_a, key_a));
  EXPECT_EQ(after.type, net::MessageType::kError);
  const auto still_ok = server.handle(upload_of(series, 2, device_b, key_b));
  EXPECT_EQ(still_ok.type, net::MessageType::kAnalysisResult);
}

// Same (device, session) pair on two different devices never collide in
// the session cache: session ids are scoped per tenant.
TEST(ShardedService, SessionIdsAreScopedPerDevice) {
  ServiceConfig service;
  service.shards = 4;
  auto server = make_server(service);
  const std::vector<std::uint8_t> key_b = {0xB0, 0xB1};
  server.provision_device(1, kMacKey);
  server.provision_device(2, key_b);

  const auto first = server.handle(upload_of(dip_series(2), 7, 1, kMacKey));
  ASSERT_EQ(first.type, net::MessageType::kAnalysisResult);
  // Device 2 reuses session 7 with different bytes; if the cache keyed on
  // session alone this would be a conflict or a stale replay.
  const auto second = server.handle(upload_of(dip_series(3), 7, 2, key_b));
  EXPECT_EQ(second.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(server.replays_served(), 0u);
}

// --- Session-cache LRU bounding ------------------------------------------

TEST(SessionCacheLru, CapacityBoundsOccupancyAndCountsEvictions) {
  SessionCacheConfig config;
  config.shards = 1;  // single shard: the bound is exact
  config.capacity = 4;
  SessionCache cache(config);
  ASSERT_EQ(cache.per_shard_capacity(), 4u);

  const auto envelope_for = [](std::uint64_t session, std::uint8_t byte) {
    return net::make_envelope(net::MessageType::kSignalUpload, session, 1,
                              {byte}, kMacKey);
  };
  for (std::uint64_t session = 0; session < 10; ++session) {
    const auto request =
        envelope_for(session, static_cast<std::uint8_t>(session));
    ASSERT_EQ(cache.lookup(request).state, SessionCache::Lookup::kMiss);
    cache.insert(request, envelope_for(session, 0xEE));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 6u);
}

TEST(SessionCacheLru, ReplayRefreshesRecency) {
  SessionCacheConfig config;
  config.shards = 1;
  config.capacity = 2;
  SessionCache cache(config);
  const auto envelope_for = [](std::uint64_t session, std::uint8_t byte) {
    return net::make_envelope(net::MessageType::kSignalUpload, session, 1,
                              {byte}, kMacKey);
  };
  cache.insert(envelope_for(1, 1), envelope_for(1, 0xEE));
  cache.insert(envelope_for(2, 2), envelope_for(2, 0xEE));
  // Touch session 1: it becomes most recent, so inserting session 3
  // evicts session 2, not 1.
  EXPECT_EQ(cache.lookup(envelope_for(1, 1)).state,
            SessionCache::Lookup::kReplay);
  cache.insert(envelope_for(3, 3), envelope_for(3, 0xEE));
  EXPECT_EQ(cache.lookup(envelope_for(1, 1)).state,
            SessionCache::Lookup::kReplay);
  EXPECT_EQ(cache.lookup(envelope_for(2, 2)).state,
            SessionCache::Lookup::kMiss);
}

// The satellite's contract: eviction must never cause a *different*
// payload under a recycled session id to be answered from stale cache
// state. Once the original exchange is evicted, a new payload on that
// session id is a fresh request — processed, not conflicted, and
// certainly not answered with the old response.
TEST(SessionCacheLru, EvictedSessionWithNewPayloadIsAFreshMiss) {
  SessionCacheConfig config;
  config.shards = 1;
  config.capacity = 2;
  SessionCache cache(config);
  const auto envelope_for = [](std::uint64_t session, std::uint8_t byte) {
    return net::make_envelope(net::MessageType::kSignalUpload, session, 1,
                              {byte}, kMacKey);
  };
  const auto original = envelope_for(7, 0x01);
  cache.insert(original, envelope_for(7, 0xAA));
  // While cached, a different payload on session 7 is a conflict...
  EXPECT_EQ(cache.lookup(envelope_for(7, 0x02)).state,
            SessionCache::Lookup::kConflict);
  // ...then two new sessions evict it...
  cache.insert(envelope_for(8, 0x08), envelope_for(8, 0xEE));
  cache.insert(envelope_for(9, 0x09), envelope_for(9, 0xEE));
  EXPECT_EQ(cache.evictions(), 1u);
  // ...after which the same different-payload request is a clean miss:
  // no conflict, and no stale 0xAA response.
  const auto hit = cache.lookup(envelope_for(7, 0x02));
  EXPECT_EQ(hit.state, SessionCache::Lookup::kMiss);
}

// End-to-end: a tiny cache on a live server stays bounded, serves
// byte-identical replays while cached, and re-processes (never serves
// stale bytes for) an evicted session re-used with a different payload.
TEST(SessionCacheLru, ServerEndToEndEvictionNeverServesStaleResponse) {
  ServiceConfig service;
  service.shards = 1;
  service.session_cache_capacity = 2;
  auto server = make_server(service);
  server.provision_device(1, kMacKey);

  const auto small = upload_of(dip_series(1), 100, 1, kMacKey);
  const auto first = server.handle(small);
  ASSERT_EQ(first.type, net::MessageType::kAnalysisResult);
  // Byte-identical replay while cached: served from cache, bit-equal.
  const auto replayed = server.handle(small);
  EXPECT_EQ(replayed.payload, first.payload);
  EXPECT_EQ(server.replays_served(), 1u);

  // Evict session 100 with two newer sessions.
  (void)server.handle(upload_of(dip_series(1), 101, 1, kMacKey));
  (void)server.handle(upload_of(dip_series(1), 102, 1, kMacKey));
  EXPECT_LE(server.session_cache().size(), 2u);
  EXPECT_GE(server.session_cache().evictions(), 1u);

  // Session 100 returns with a *different* acquisition: must be analyzed
  // fresh (3 peaks, not the cached 1-peak report) — not a conflict, not
  // a stale replay.
  const auto reused = server.handle(upload_of(dip_series(3), 100, 1, kMacKey));
  ASSERT_EQ(reused.type, net::MessageType::kAnalysisResult);
  const auto report = core::PeakReport::deserialize(reused.payload);
  EXPECT_EQ(report.reference_peak_count(), 3u);
  EXPECT_EQ(server.replays_served(), 1u);
}

// --- Many-thread hammer (the TSan target) --------------------------------

// Concurrent provision / revoke / upload / stats / snapshot traffic over
// a sharded server. Assertions are deliberately loose — the point is
// that TSan observes the full mixed workload with no data races and the
// aggregate counters stay coherent.
TEST(ShardedService, ManyThreadHammer) {
  ServiceConfig service;
  service.shards = 4;
  service.session_cache_capacity = 64;
  auto server = make_server(service);
  const auto series = dip_series(1);

  constexpr std::uint64_t kStableDevices = 4;
  for (std::uint64_t device = 0; device < kStableDevices; ++device)
    server.provision_device(device, kMacKey);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> uploads_ok{0};

  std::vector<std::thread> threads;
  // Uploaders: each loops over the stable devices with unique sessions.
  for (unsigned worker = 0; worker < 2; ++worker) {
    threads.emplace_back([&, worker] {
      for (std::uint64_t i = 0; i < 40; ++i) {
        const std::uint64_t device = i % kStableDevices;
        const auto response = server.handle(upload_of(
            series, (worker + 1) * 1000 + i, device, kMacKey));
        if (response.type == net::MessageType::kAnalysisResult)
          uploads_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Churner: provisions and revokes a disjoint device range.
  threads.emplace_back([&] {
    for (std::uint64_t i = 0; i < 200; ++i) {
      const std::uint64_t device = 100 + (i % 16);
      server.provision_device(device, kMacKey);
      (void)server.devices().revoke(device);
    }
  });
  // Observer: stats + record snapshots while everything else runs.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto stats = server.stats();
      EXPECT_GE(stats.processing_time_s, 0.0);
      (void)server.records().snapshot();
      (void)server.session_cache().size();
      std::this_thread::yield();
    }
  });

  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  EXPECT_EQ(uploads_ok.load(), 80u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests_processed + stats.replays_served, 80u);
  // The stable devices survived the churn.
  for (std::uint64_t device = 0; device < kStableDevices; ++device)
    EXPECT_TRUE(server.devices().lookup(device).has_value());
}

}  // namespace
}  // namespace medsen::cloud
