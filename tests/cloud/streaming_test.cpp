#include "cloud/streaming.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"
#include "sim/signal_synth.h"

namespace medsen::cloud {
namespace {

/// Long drifting signal with dips at known times.
std::vector<double> long_signal(std::size_t n, const std::vector<double>& at,
                                double rate, std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  std::vector<double> depth(n, 0.0);
  for (double center : at)
    sim::add_gaussian_pulse(depth, rate, 0.0, center, 0.010, 0.01);
  sim::DriftConfig drift;
  auto xs = sim::synth_baseline(n, rate, 0.0, drift, rng);
  for (std::size_t i = 0; i < n; ++i) xs[i] *= 1.0 - depth[i];
  sim::add_white_noise(xs, 8e-5, rng);
  return xs;
}

TEST(Streaming, MatchesBatchOnLongSignal) {
  const double rate = 450.0;
  std::vector<double> centers;
  for (int k = 0; k < 60; ++k) centers.push_back(5.0 + k * 9.7);
  const std::size_t n = 300000;  // ~11 minutes
  const auto xs = long_signal(n, centers, rate, 5);

  // Batch reference.
  const auto batch_peaks =
      dsp::detect_peaks(dsp::detrend(xs), rate, 0.0);

  // Streaming in awkward chunk sizes.
  StreamingAnalyzer analyzer(rate);
  std::size_t pos = 0;
  crypto::ChaChaRng rng(6);
  while (pos < xs.size()) {
    const std::size_t step = std::min<std::size_t>(
        1 + rng.uniform(30000), xs.size() - pos);
    analyzer.push(std::span<const double>(xs.data() + pos, step));
    pos += step;
  }
  const auto streamed = analyzer.finish();

  EXPECT_EQ(streamed.size(), centers.size());
  ASSERT_EQ(batch_peaks.size(), streamed.size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_NEAR(streamed[i].time_s, batch_peaks[i].time_s, 0.01) << i;
}

TEST(Streaming, PeaksOnChunkBoundariesNotLostOrDoubled) {
  const double rate = 450.0;
  StreamingConfig config;
  config.chunk_samples = 4096;
  config.overlap_samples = 256;
  // Plant peaks exactly at multiples of the chunk boundary time.
  std::vector<double> centers;
  for (int k = 1; k <= 10; ++k)
    centers.push_back(static_cast<double>(k) * 4096.0 / rate);
  const auto xs = long_signal(50000, centers, rate, 7);

  StreamingAnalyzer analyzer(rate, config);
  analyzer.push(xs);
  const auto peaks = analyzer.finish();
  EXPECT_EQ(peaks.size(), centers.size());
}

TEST(Streaming, BoundedMemorySmallChunks) {
  StreamingConfig config;
  config.chunk_samples = 2048;
  config.overlap_samples = 128;
  StreamingAnalyzer analyzer(450.0, config);
  const auto xs = long_signal(100000, {50.0, 120.0}, 450.0, 8);
  for (std::size_t pos = 0; pos < xs.size(); pos += 100)
    analyzer.push(std::span<const double>(
        xs.data() + pos, std::min<std::size_t>(100, xs.size() - pos)));
  const auto peaks = analyzer.finish();
  EXPECT_EQ(peaks.size(), 2u);
}

TEST(Streaming, ReusableAfterFinish) {
  const double rate = 450.0;
  StreamingAnalyzer analyzer(rate);
  const auto first = long_signal(20000, {10.0}, rate, 9);
  analyzer.push(first);
  EXPECT_EQ(analyzer.finish().size(), 1u);

  const auto second = long_signal(20000, {20.0, 30.0}, rate, 10);
  analyzer.push(second);
  const auto peaks = analyzer.finish();
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].time_s, 20.0, 0.05);
}

TEST(Streaming, EmptyRunYieldsNothing) {
  StreamingAnalyzer analyzer(450.0);
  EXPECT_TRUE(analyzer.finish().empty());
}

TEST(Streaming, RejectsBadConfig) {
  EXPECT_THROW(StreamingAnalyzer(0.0), std::invalid_argument);
  StreamingConfig config;
  config.chunk_samples = 100;
  config.overlap_samples = 60;
  EXPECT_THROW(StreamingAnalyzer(450.0, config), std::invalid_argument);
}

}  // namespace
}  // namespace medsen::cloud
