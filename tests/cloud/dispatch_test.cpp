#include "cloud/dispatch.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace medsen::cloud {
namespace {

TEST(DeviceRegistry, ProvisionLookupRevoke) {
  DeviceRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.lookup(7).has_value());

  registry.provision(7, {1, 2, 3});
  ASSERT_TRUE(registry.lookup(7).has_value());
  EXPECT_EQ(*registry.lookup(7), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(registry.size(), 1u);

  // Re-provisioning rotates the key in place.
  registry.provision(7, {9});
  EXPECT_EQ(*registry.lookup(7), (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(registry.size(), 1u);

  EXPECT_TRUE(registry.revoke(7));
  EXPECT_FALSE(registry.revoke(7));
  EXPECT_FALSE(registry.lookup(7).has_value());
}

TEST(DeviceRegistry, ConcurrentProvisionAndLookup) {
  DeviceRegistry registry;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < 50; ++i) {
        const auto id = static_cast<std::uint64_t>(t * 50 + i);
        registry.provision(id, {static_cast<std::uint8_t>(t)});
        (void)registry.lookup(id);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(registry.size(), 200u);
}

TEST(AdmissionGate, UnboundedAdmitsEverything) {
  AdmissionGate gate(0);
  auto a = gate.try_enter();
  auto b = gate.try_enter();
  EXPECT_TRUE(a.admitted());
  EXPECT_TRUE(b.admitted());
  EXPECT_EQ(gate.shed_total(), 0u);
}

TEST(AdmissionGate, ShedsPastTheLimitAndRecovers) {
  AdmissionGate gate(2);
  auto a = gate.try_enter();
  auto b = gate.try_enter();
  EXPECT_TRUE(a.admitted());
  EXPECT_TRUE(b.admitted());
  EXPECT_EQ(gate.in_flight(), 2u);

  auto c = gate.try_enter();
  EXPECT_FALSE(c.admitted());
  EXPECT_EQ(gate.shed_total(), 1u);

  a.release();
  EXPECT_EQ(gate.in_flight(), 1u);
  auto d = gate.try_enter();
  EXPECT_TRUE(d.admitted());
}

TEST(AdmissionGate, TicketReleaseIsIdempotentAndMoveSafe) {
  AdmissionGate gate(1);
  auto a = gate.try_enter();
  EXPECT_TRUE(a.admitted());
  auto moved = std::move(a);
  EXPECT_TRUE(moved.admitted());
  EXPECT_FALSE(a.admitted());  // NOLINT(bugprone-use-after-move): on purpose
  moved.release();
  moved.release();  // double release must not underflow
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(AdmissionGate, TicketReleasesOnScopeExit) {
  AdmissionGate gate(1);
  {
    auto a = gate.try_enter();
    EXPECT_TRUE(a.admitted());
    EXPECT_EQ(gate.in_flight(), 1u);
  }
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(ServiceResult, SuccessAndFailureFactories) {
  auto ok = ServiceResult::success(net::MessageType::kAnalysisResult,
                                   {1, 2, 3});
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.response_type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(ok.response_payload, (std::vector<std::uint8_t>{1, 2, 3}));

  auto bad = ServiceResult::failure(net::ErrorCode::kQualityRejected,
                                    "saturated", 3);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, net::ErrorCode::kQualityRejected);
  EXPECT_EQ(bad.error_subcode, 3u);
  EXPECT_EQ(bad.detail, "saturated");
}

TEST(Dispatcher, RoutesByMessageType) {
  Dispatcher dispatcher;
  dispatcher.add(net::MessageType::kSignalUpload,
                 [](const net::Envelope&, RequestContext&) {
                   return ServiceResult::success(
                       net::MessageType::kAnalysisResult, {0xAA});
                 });
  dispatcher.add(net::MessageType::kAuthPass,
                 [](const net::Envelope&, RequestContext&) {
                   return ServiceResult::failure(net::ErrorCode::kMalformed,
                                                 "nope");
                 });

  EXPECT_EQ(dispatcher.registered().size(), 2u);
  EXPECT_EQ(dispatcher.find(net::MessageType::kProgress), nullptr);

  net::Envelope request;
  RequestContext context;
  const auto* upload = dispatcher.find(net::MessageType::kSignalUpload);
  ASSERT_NE(upload, nullptr);
  EXPECT_TRUE((*upload)(request, context).ok);
  const auto* auth = dispatcher.find(net::MessageType::kAuthPass);
  ASSERT_NE(auth, nullptr);
  EXPECT_FALSE((*auth)(request, context).ok);
}

}  // namespace
}  // namespace medsen::cloud
