// cloud::DurableState end-to-end: WAL-backed server state survives
// restart, compaction preserves exactly the journal's effects, handshake
// ordinals never rewind, sealing keeps secret bytes off the disk, and
// corrupt snapshots surface as the typed PersistenceError.

#include "cloud/durability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cloud/persistence_error.h"
#include "cloud/server.h"
#include "compress/crc32.h"
#include "core/session_crypto.h"
#include "crypto/cmac.h"
#include "net/messages.h"
#include "util/crash_point.h"
#include "util/fileio.h"

namespace medsen::cloud {
namespace {

constexpr std::uint64_t kDevice = 7;

std::string temp_dir(const char* name) {
  const auto dir =
      std::string(::testing::TempDir()) + "/medsen_durability_" + name;
  return dir;
}

void remove_state(const std::string& dir) {
  for (const char* file : {"/journal.wal", "/records.snap", "/enroll.snap",
                           "/registry.snap", "/sessions.snap",
                           "/seal.epoch"}) {
    std::remove((dir + file).c_str());
    std::remove((dir + file + ".tmp").c_str());
  }
}

std::vector<std::uint8_t> master_key(std::uint8_t fill) {
  return std::vector<std::uint8_t>(16, fill);
}

DurabilityConfig config_for(const std::string& dir) {
  DurabilityConfig config;
  config.dir = dir;
  return config;
}

/// One server lifetime: a DurableState and a CloudServer recovered from
/// it. Destroying the rig and booting a new one from the same dir is the
/// unit-test version of a process restart.
struct Rig {
  std::unique_ptr<DurableState> durable;  // outlives the server
  std::unique_ptr<CloudServer> server;
  RecoveryStats recovery;

  explicit Rig(DurabilityConfig config) {
    durable = std::make_unique<DurableState>(std::move(config));
    server = std::make_unique<CloudServer>(
        AnalysisConfig{}, auth::CytoAlphabet{},
        auth::ParticleClassifier::train({}));
    recovery = server->attach_durability(*durable);
  }
  ~Rig() { server.reset(); }  // server first: it points at durable
};

auth::CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  auth::CytoCode code;
  code.levels = levels;
  return code;
}

/// Is `needle` a contiguous subsequence of any of the state files?
bool on_disk(const std::string& dir, std::span<const std::uint8_t> needle) {
  for (const char* file : {"/journal.wal", "/records.snap", "/enroll.snap",
                           "/registry.snap", "/sessions.snap"}) {
    const auto path = dir + file;
    if (!util::file_exists(path)) continue;
    const auto bytes = util::read_file(path);
    if (std::search(bytes.begin(), bytes.end(), needle.begin(),
                    needle.end()) != bytes.end())
      return true;
  }
  return false;
}

// ---- sealing-nonce extraction (outside-in, per docs/PROTOCOL.md) ----

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(le32(p)) |
         (static_cast<std::uint64_t>(le32(p + 4)) << 32);
}

/// The CTR nonce of a snapshot container's sealed body
/// (u32 magic | u32 ver | u32 crc | blob(u64 lsn | blob(u8 1 | u64
/// nonce | ct))), or nullopt if the file is torn or unsealed.
std::optional<std::uint64_t> snapshot_nonce(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 16) return std::nullopt;
  const std::uint32_t outer_len = le32(bytes.data() + 12);
  if (outer_len < 12 || outer_len > bytes.size() - 16) return std::nullopt;
  const std::uint8_t* outer = bytes.data() + 16;
  const std::uint32_t flagged_len = le32(outer + 8);
  if (flagged_len < 9 || flagged_len > outer_len - 12) return std::nullopt;
  if (outer[12] != 1) return std::nullopt;  // not sealed
  return le64(outer + 13);
}

/// Every CTR nonce in a journal's CRC-complete sealed records.
std::vector<std::uint64_t> journal_nonces(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint64_t> nonces;
  std::size_t offset = 16;  // file header
  while (offset + 8 <= bytes.size()) {
    const std::uint32_t len = le32(bytes.data() + offset);
    const std::uint32_t crc = le32(bytes.data() + offset + 4);
    if (len > bytes.size() - offset - 8) break;
    const std::span<const std::uint8_t> body{bytes.data() + offset + 8, len};
    if (compress::crc32(body) != crc) break;
    // body = u64 lsn | u8 type | u8 flag | u64 nonce | ciphertext
    if (len >= 9 + 9 && body[9] == 1) nonces.push_back(le64(body.data() + 10));
    offset += 8 + len;
  }
  return nonces;
}

TEST(Durability, StateSurvivesRestartViaJournalReplay) {
  const auto dir = temp_dir("replay");
  remove_state(dir);

  const auto code = code_of({2, 1});
  {
    Rig rig(config_for(dir));
    EXPECT_EQ(rig.recovery.records_replayed, 0u);
    rig.server->provision_device(3, master_key(0x31));
    rig.server->rotate_master_key(1, master_key(0x5A));
    rig.server->enroll_device(kDevice);
    rig.server->enroll_user("alice", code);
    rig.server->store_result(code, {11, {0xAA, 0xBB}});
    rig.server->store_result(code, {12, {0xCC}});
    EXPECT_TRUE(rig.server->revoke_device(3));
  }

  Rig rig(config_for(dir));
  EXPECT_EQ(rig.recovery.records_replayed, 7u);
  EXPECT_EQ(rig.recovery.stored_records, 2u);
  EXPECT_EQ(rig.recovery.user_enrollments, 1u);
  EXPECT_EQ(rig.recovery.registry_events, 4u);
  EXPECT_FALSE(rig.recovery.tail_truncated);
  EXPECT_GE(rig.recovery.replay_ms, 0.0);

  EXPECT_EQ(rig.server->enrollments().lookup(code), "alice");
  const auto records = rig.server->records().fetch(code);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, 11u);
  EXPECT_EQ(records[1].session_id, 12u);
  EXPECT_TRUE(rig.server->devices().is_revoked(3));
  EXPECT_FALSE(rig.server->devices().is_revoked(kDevice));
  EXPECT_TRUE(
      rig.server->devices().lookup_epoch(kDevice, 1).has_value());
  remove_state(dir);
}

TEST(Durability, CompactionPreservesStateAndTruncatesJournal) {
  const auto dir = temp_dir("compact");
  remove_state(dir);

  const auto code = code_of({1, 2});
  {
    Rig rig(config_for(dir));
    rig.server->rotate_master_key(1, master_key(0x5A));
    rig.server->enroll_device(kDevice);
    rig.server->enroll_user("bob", code);
    rig.server->store_result(code, {21, {0x01}});
    rig.durable->compact(*rig.server);
    EXPECT_TRUE(util::file_exists(rig.durable->records_snapshot_path()));
    // Post-compaction mutations land in the (now short) journal.
    rig.server->store_result(code, {22, {0x02}});
  }

  Rig rig(config_for(dir));
  EXPECT_TRUE(rig.recovery.snapshots_loaded);
  // Only the post-compaction record replays from the journal.
  EXPECT_EQ(rig.recovery.stored_records, 1u);
  const auto records = rig.server->records().fetch(code);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, 21u);
  EXPECT_EQ(records[1].session_id, 22u);
  EXPECT_EQ(rig.server->enrollments().lookup(code), "bob");
  remove_state(dir);
}

TEST(Durability, AutoCompactionTriggersAtThreshold) {
  const auto dir = temp_dir("autocompact");
  remove_state(dir);
  DurabilityConfig config = config_for(dir);
  config.compact_after_records = 4;
  {
    Rig rig(config);
    const auto code = code_of({2, 2});
    rig.server->rotate_master_key(1, master_key(0x11));
    rig.server->enroll_device(kDevice);
    rig.server->enroll_user("carol", code);
    rig.server->store_result(code, {1, {0x01}});  // 4th append: compacts
    EXPECT_TRUE(util::file_exists(rig.durable->records_snapshot_path()));
    EXPECT_EQ(rig.durable->last_recovery().records_replayed, 0u);
  }
  Rig rig(config);
  EXPECT_TRUE(rig.recovery.snapshots_loaded);
  EXPECT_EQ(rig.server->records().record_count(), 1u);
  remove_state(dir);
}

TEST(Durability, HandshakeOrdinalsNeverRewindAcrossRestart) {
  const auto dir = temp_dir("handshake");
  remove_state(dir);

  const auto device_key = crypto::diversify_device_key(master_key(0x5A),
                                                       kDevice, 1);
  const auto rnd_b_of = [&](Rig& rig, std::uint64_t session) {
    core::SessionCrypto crypto(kDevice, device_key, 1, 0x1234);
    const auto response = rig.server->handle(crypto.make_challenge(session));
    EXPECT_EQ(response.type, net::MessageType::kAuthResponse);
    const auto payload = net::AuthResponsePayload::deserialize(
        response.payload);
    return std::vector<std::uint8_t>(payload.challenge.begin(),
                                     payload.challenge.end());
  };

  std::vector<std::vector<std::uint8_t>> nonces;
  {
    Rig rig(config_for(dir));
    rig.server->rotate_master_key(1, master_key(0x5A));
    rig.server->enroll_device(kDevice);
    nonces.push_back(rnd_b_of(rig, 100));
    nonces.push_back(rnd_b_of(rig, 101));
  }
  {
    // Restart replays the kHandshake marks: the same device-side RndA
    // must get a FRESH RndB, not a replay of nonce #1.
    Rig rig(config_for(dir));
    EXPECT_GE(rig.recovery.handshake_marks, 2u);
    nonces.push_back(rnd_b_of(rig, 102));
    // Compaction folds the ordinal into sessions.snap.
    rig.durable->compact(*rig.server);
  }
  {
    Rig rig(config_for(dir));
    nonces.push_back(rnd_b_of(rig, 103));
  }
  for (std::size_t i = 0; i < nonces.size(); ++i)
    for (std::size_t j = i + 1; j < nonces.size(); ++j)
      EXPECT_NE(nonces[i], nonces[j]) << "RndB reuse between handshake "
                                      << i << " and " << j;
  remove_state(dir);
}

TEST(Durability, StorageKeySealsSecretsOnDisk) {
  const auto plain_dir = temp_dir("plain");
  const auto sealed_dir = temp_dir("sealed");
  remove_state(plain_dir);
  remove_state(sealed_dir);

  // Distinctive byte patterns to scan for.
  std::vector<std::uint8_t> legacy_key(16);
  for (std::size_t i = 0; i < legacy_key.size(); ++i)
    legacy_key[i] = static_cast<std::uint8_t>(0xA0 + i);
  std::vector<std::uint8_t> master(16);
  for (std::size_t i = 0; i < master.size(); ++i)
    master[i] = static_cast<std::uint8_t>(0xC0 + i);

  const auto run = [&](const std::string& dir,
                       std::vector<std::uint8_t> storage_key) {
    DurabilityConfig config = config_for(dir);
    config.storage_key = std::move(storage_key);
    Rig rig(config);
    rig.server->provision_device(3, legacy_key);
    rig.server->rotate_master_key(1, master);
    rig.server->enroll_device(kDevice);
    rig.durable->compact(*rig.server);
    rig.server->provision_device(4, legacy_key);  // journal after compact
  };

  // Control: without a storage key the scan DOES find the key bytes —
  // proving the scan itself works.
  run(plain_dir, {});
  EXPECT_TRUE(on_disk(plain_dir, legacy_key));
  EXPECT_TRUE(on_disk(plain_dir, master));

  run(sealed_dir, std::vector<std::uint8_t>(32, 0x7E));
  EXPECT_FALSE(on_disk(sealed_dir, legacy_key));
  EXPECT_FALSE(on_disk(sealed_dir, master));

  // And the sealed state still recovers.
  DurabilityConfig config = config_for(sealed_dir);
  config.storage_key = std::vector<std::uint8_t>(32, 0x7E);
  Rig rig(config);
  EXPECT_TRUE(rig.server->devices().lookup(4).has_value());
  EXPECT_TRUE(rig.server->devices().lookup_epoch(kDevice, 1).has_value());

  // A sealed store without its key is unreadable, with the typed error.
  EXPECT_THROW(Rig{config_for(sealed_dir)}, PersistenceError);
  remove_state(plain_dir);
  remove_state(sealed_dir);
}

TEST(Durability, LsnSequenceSurvivesCrashRightAfterCompaction) {
  // A crash between compaction's truncate and the next append leaves an
  // EMPTY journal next to snapshots stamped with LSN N. The restarted
  // journal must continue above N (the snapshots carry the sequence):
  // without the floor, the next acked record would reuse LSN 1 and a
  // later recovery would gate it out behind the snapshot — a silently
  // lost acknowledged write.
  const auto dir = temp_dir("lsnfloor");
  remove_state(dir);
  const auto code = code_of({1, 1});
  {
    Rig rig(config_for(dir));
    rig.server->enroll_user("frank", code);
    rig.server->store_result(code, {31, {0x31}});
    rig.durable->compact(*rig.server);  // journal now empty, snaps at LSN 2
  }
  {
    Rig rig(config_for(dir));  // the post-crash restart
    EXPECT_EQ(rig.durable->last_lsn(), 2u);
    rig.server->store_result(code, {32, {0x32}});
    EXPECT_EQ(rig.durable->last_lsn(), 3u);
  }
  Rig rig(config_for(dir));
  const auto records = rig.server->records().fetch(code);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].session_id, 32u);
  remove_state(dir);
}

TEST(Durability, CorruptSnapshotThrowsTyped) {
  const auto dir = temp_dir("corruptsnap");
  remove_state(dir);
  {
    Rig rig(config_for(dir));
    rig.server->enroll_user("dave", code_of({2, 1}));
    rig.durable->compact(*rig.server);
  }
  auto bytes = util::read_file(dir + "/enroll.snap");
  bytes[bytes.size() / 2] ^= 0xFF;
  util::write_file(dir + "/enroll.snap", bytes);
  EXPECT_THROW(Rig{config_for(dir)}, PersistenceError);
  remove_state(dir);
}

TEST(Durability, CrashDuringCompactionNeverReusesSealingNonces) {
  // The reuse hole this pins: compaction crashes after records.snap.tmp
  // is fully written and fsync'd but before the rename. The stranded
  // tmp holds ciphertext under a nonce recovery never reads (it only
  // unseals committed snapshots + the journal), so a counter rebuilt
  // from observed payloads would re-issue that nonce on the next append
  // — two ciphertexts under one AES-CTR keystream, XOR of ciphertexts =
  // XOR of plaintexts. The fix is the per-boot epoch partition in
  // seal.epoch plus dropping stale tmps at open.
  const auto dir = temp_dir("noncereuse");
  remove_state(dir);
  DurabilityConfig config = config_for(dir);
  config.storage_key = std::vector<std::uint8_t>(32, 0x42);
  const auto code = code_of({2, 1});
  {
    Rig rig(config);
    rig.server->enroll_user("grace", code);
    rig.server->store_result(code, {41, {0x41}});
    util::ScopedCrashArm armed("fileio.atomic.tmp_synced");
    EXPECT_THROW(rig.durable->compact(*rig.server), util::SimulatedCrash);
  }
  const auto tmp = dir + "/records.snap.tmp";
  ASSERT_TRUE(util::file_exists(tmp));
  const auto stranded = snapshot_nonce(util::read_file(tmp));
  ASSERT_TRUE(stranded.has_value());

  {
    Rig rig(config);
    // Stale tmps are dropped at open, so the stranded ciphertext cannot
    // outlive the nonce accounting either.
    EXPECT_FALSE(util::file_exists(tmp));
    rig.server->store_result(code, {42, {0x42}});
  }

  // Every sealed journal record — old boot and new — carries a nonce
  // distinct from the stranded one and from each other.
  const auto nonces = journal_nonces(util::read_file(dir + "/journal.wal"));
  ASSERT_GE(nonces.size(), 3u);  // enroll, store 41, store 42
  const std::set<std::uint64_t> unique(nonces.begin(), nonces.end());
  EXPECT_EQ(unique.size(), nonces.size()) << "nonce reused inside journal";
  EXPECT_EQ(unique.count(*stranded), 0u)
      << "stranded snapshot nonce re-issued after restart";
  remove_state(dir);
}

TEST(Durability, RacingEnrollmentsNeverPoisonTheJournal) {
  // Validation must run inside the durability gate: if two racing
  // enrollments of one code both pass a check done outside it, both
  // journal kUserEnrolled and the loser's apply() throws only after its
  // record is durable — every later replay then throws and the server
  // can never boot again.
  const auto dir = temp_dir("enrollrace");
  remove_state(dir);
  constexpr int kRounds = 12;
  {
    Rig rig(config_for(dir));
    for (int round = 0; round < kRounds; ++round) {
      const auto code =
          code_of({static_cast<std::uint8_t>(1 + round % 4),
                   static_cast<std::uint8_t>(1 + round / 4)});
      std::atomic<int> rejected{0};
      std::vector<std::thread> threads;
      threads.reserve(4);
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&rig, &rejected, &code, round, t] {
          try {
            rig.server->enroll_user("user" + std::to_string(round) + "_" +
                                        std::to_string(t),
                                    code);
          } catch (const std::invalid_argument&) {
            ++rejected;
          }
        });
      }
      for (auto& thread : threads) thread.join();
      EXPECT_EQ(rejected.load(), 3) << "round " << round;
    }
  }
  // The replay is the proof: exactly one record per code reached the
  // WAL, so recovery applies cleanly instead of throwing.
  Rig rig(config_for(dir));
  EXPECT_EQ(rig.recovery.user_enrollments,
            static_cast<std::uint64_t>(kRounds));
  remove_state(dir);
}

TEST(Durability, SnapshotServerMismatchSurfacesTyped) {
  // A snapshot written under one alphabet recovered into a server with
  // another makes enroll() throw std::invalid_argument mid-restore;
  // the persistence contract says every recovery failure is the typed
  // PersistenceError.
  const auto dir = temp_dir("snapmismatch");
  remove_state(dir);
  {
    Rig rig(config_for(dir));
    rig.server->enroll_user("heidi", code_of({4, 4}));
    rig.durable->compact(*rig.server);
  }
  DurableState durable(config_for(dir));
  auth::CytoAlphabet small;
  small.concentration_levels_per_ul = {0.0, 150.0};  // level 4 invalid
  CloudServer server(AnalysisConfig{}, small,
                     auth::ParticleClassifier::train({}));
  EXPECT_THROW(server.attach_durability(durable), PersistenceError);
  remove_state(dir);
}

TEST(Durability, InvalidEnrollmentIsNeverJournaled) {
  const auto dir = temp_dir("invalidenroll");
  remove_state(dir);
  {
    Rig rig(config_for(dir));
    rig.server->enroll_user("erin", code_of({2, 1}));
    // Same code for another user: rejected before it reaches the WAL.
    EXPECT_THROW(rig.server->enroll_user("mallory", code_of({2, 1})),
                 std::invalid_argument);
    EXPECT_EQ(rig.durable->last_lsn(), 1u);
  }
  // Replay is clean — the invalid enrollment left no journal record.
  Rig rig(config_for(dir));
  EXPECT_EQ(rig.recovery.user_enrollments, 1u);
  EXPECT_EQ(rig.server->enrollments().lookup(code_of({2, 1})), "erin");
  remove_state(dir);
}

}  // namespace
}  // namespace medsen::cloud
