// Determinism contract of the parallel analysis stack: for any thread
// count, AnalysisService and the pipelined StreamingAnalyzer must produce
// results bit-identical to the serial path (ISSUE: parallel windows
// accumulate into per-task slabs reduced serially in window order).

#include <gtest/gtest.h>

#include <thread>

#include "cloud/analysis_service.h"
#include "cloud/streaming.h"
#include "crypto/chacha20.h"
#include "sim/signal_synth.h"

namespace medsen::cloud {
namespace {

/// Multi-carrier acquisition with drift, noise and planted pulses —
/// large enough that detrend spans many windows per channel.
util::MultiChannelSeries make_series(std::size_t n_per_channel,
                                     std::size_t channels,
                                     std::uint64_t seed) {
  const double rate = 450.0;
  util::MultiChannelSeries series;
  for (std::size_t c = 0; c < channels; ++c) {
    crypto::ChaChaRng rng(seed + c);
    std::vector<double> depth(n_per_channel, 0.0);
    const double duration = static_cast<double>(n_per_channel) / rate;
    for (std::size_t k = 0; k < n_per_channel / 2000; ++k)
      sim::add_gaussian_pulse(depth, rate, 0.0,
                              rng.uniform_double() * duration, 0.006,
                              0.004 + 0.01 * rng.uniform_double());
    sim::DriftConfig drift;
    auto xs = sim::synth_baseline(n_per_channel, rate, 0.0, drift, rng);
    for (std::size_t i = 0; i < n_per_channel; ++i) xs[i] *= 1.0 - depth[i];
    sim::add_white_noise(xs, 1e-4, rng);
    series.carrier_frequencies_hz.push_back(5.0e5 * (c + 1));
    series.channels.emplace_back(rate, std::move(xs));
  }
  return series;
}

TEST(ParallelAnalysis, ByteIdenticalReportAcrossThreadCounts) {
  const auto series = make_series(60000, 4, 11);

  AnalysisConfig serial_config;
  serial_config.threads = 1;
  AnalysisService serial(serial_config);
  const auto reference = serial.analyze(series).serialize();
  ASSERT_FALSE(reference.empty());

  for (const unsigned threads : {2u, 8u}) {
    AnalysisConfig config;
    config.threads = threads;
    AnalysisService service(config);
    ASSERT_NE(service.thread_pool(), nullptr);
    const auto report = service.analyze(series).serialize();
    EXPECT_EQ(report, reference) << "threads=" << threads;
    // Re-running on a warm pool must not drift either.
    EXPECT_EQ(service.analyze(series).serialize(), reference)
        << "threads=" << threads << " (second run)";
  }
}

TEST(ParallelAnalysis, ParallelStatsMatchSerial) {
  const auto series = make_series(30000, 2, 3);
  AnalysisConfig serial_config;
  serial_config.threads = 1;
  AnalysisService serial(serial_config);
  (void)serial.analyze(series);

  AnalysisConfig config;
  config.threads = 4;
  AnalysisService service(config);
  (void)service.analyze(series);
  EXPECT_EQ(service.stats().samples_processed,
            serial.stats().samples_processed);
  EXPECT_EQ(service.stats().peaks_found, serial.stats().peaks_found);
}

TEST(ParallelAnalysis, DetrendParallelMatchesSerialBitwise) {
  const auto series = make_series(100000, 1, 17);
  const auto signal = series.channels[0].samples();
  const auto serial = dsp::detrend(signal);
  for (const unsigned workers : {1u, 3u, 7u}) {
    util::ThreadPool pool(workers);
    const auto parallel = dsp::detrend(signal, {}, &pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(parallel[i], serial[i]) << "workers=" << workers << " i=" << i;
  }
}

TEST(ParallelAnalysis, SharedPoolAcrossConcurrentRequests) {
  // The server shape: one pool, many request threads, each analyzing its
  // own acquisition through its own service handle.
  auto pool = std::make_shared<util::ThreadPool>(2);
  constexpr std::size_t kRequests = 4;
  std::vector<util::MultiChannelSeries> inputs;
  std::vector<std::vector<std::uint8_t>> expected;
  for (std::size_t r = 0; r < kRequests; ++r) {
    inputs.push_back(make_series(20000, 2, 100 + r));
    AnalysisConfig serial_config;
    serial_config.threads = 1;
    AnalysisService serial(serial_config);
    expected.push_back(serial.analyze(inputs.back()).serialize());
  }

  AnalysisConfig config;
  AnalysisService shared_service(config, pool);
  std::vector<std::vector<std::uint8_t>> got(kRequests);
  std::vector<std::thread> requests;
  requests.reserve(kRequests);
  for (std::size_t r = 0; r < kRequests; ++r)
    requests.emplace_back([&, r] {
      got[r] = shared_service.analyze(inputs[r]).serialize();
    });
  for (auto& t : requests) t.join();
  for (std::size_t r = 0; r < kRequests; ++r)
    EXPECT_EQ(got[r], expected[r]) << "request " << r;
}

TEST(ParallelStreaming, PipelinedMatchesSerialExactly) {
  const auto series = make_series(200000, 1, 23);
  const auto xs = series.channels[0].samples();
  const double rate = 450.0;
  StreamingConfig config;
  config.chunk_samples = 16384;
  config.overlap_samples = 512;

  auto run = [&](util::ThreadPool* pool) {
    StreamingAnalyzer analyzer(rate, config, pool);
    crypto::ChaChaRng rng(9);
    std::size_t pos = 0;
    while (pos < xs.size()) {
      const std::size_t step =
          std::min<std::size_t>(1 + rng.uniform(20000), xs.size() - pos);
      analyzer.push(xs.subspan(pos, step));
      pos += step;
    }
    return analyzer.finish();
  };

  const auto serial = run(nullptr);
  ASSERT_GT(serial.size(), 10u);

  util::ThreadPool pool(2);
  const auto pipelined = run(&pool);
  ASSERT_EQ(pipelined.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(pipelined[i].time_s, serial[i].time_s) << i;
    EXPECT_EQ(pipelined[i].amplitude, serial[i].amplitude) << i;
    EXPECT_EQ(pipelined[i].width_s, serial[i].width_s) << i;
    EXPECT_EQ(pipelined[i].index, serial[i].index) << i;
  }
}

TEST(ParallelStreaming, PipelinedAnalyzerIsReusable) {
  util::ThreadPool pool(2);
  StreamingConfig config;
  config.chunk_samples = 8192;
  config.overlap_samples = 256;
  StreamingAnalyzer analyzer(450.0, config, &pool);
  EXPECT_TRUE(analyzer.pipelined());

  const auto series = make_series(40000, 1, 31);
  const auto xs = series.channels[0].samples();
  analyzer.push(xs);
  const auto first = analyzer.finish();
  analyzer.push(xs);
  const auto second = analyzer.finish();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].time_s, second[i].time_s) << i;
}

}  // namespace
}  // namespace medsen::cloud
