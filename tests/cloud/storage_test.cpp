#include "cloud/storage.h"

#include <gtest/gtest.h>

#include <thread>

namespace medsen::cloud {
namespace {

auth::CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  auth::CytoCode code;
  code.levels = levels;
  return code;
}

TEST(RecordStore, StoreAndFetch) {
  RecordStore store;
  store.store(code_of({1, 2}), {10, {0xAA}});
  store.store(code_of({1, 2}), {11, {0xBB}});
  const auto records = store.fetch(code_of({1, 2}));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, 10u);
  EXPECT_EQ(records[1].session_id, 11u);
}

TEST(RecordStore, UnknownIdentifierEmpty) {
  RecordStore store;
  EXPECT_TRUE(store.fetch(code_of({3, 3})).empty());
  EXPECT_FALSE(store.latest(code_of({3, 3})).has_value());
}

TEST(RecordStore, LatestReturnsNewest) {
  RecordStore store;
  store.store(code_of({0, 1}), {1, {}});
  store.store(code_of({0, 1}), {2, {}});
  const auto latest = store.latest(code_of({0, 1}));
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->session_id, 2u);
}

TEST(RecordStore, IdentifiersIsolated) {
  RecordStore store;
  store.store(code_of({1, 0}), {1, {}});
  store.store(code_of({0, 1}), {2, {}});
  EXPECT_EQ(store.identifier_count(), 2u);
  EXPECT_EQ(store.record_count(), 2u);
  EXPECT_EQ(store.fetch(code_of({1, 0})).size(), 1u);
}

TEST(RecordStore, BlobContentPreserved) {
  RecordStore store;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  store.store(code_of({2, 2}), {7, blob});
  EXPECT_EQ(store.latest(code_of({2, 2}))->encrypted_result, blob);
}

TEST(RecordStore, SnapshotIsAConsistentCopy) {
  RecordStore store;
  store.store(code_of({1, 2}), {10, {0xAA}});
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  // Mutating the snapshot (or the store) must not affect the other.
  snapshot.begin()->second.push_back({99, {}});
  store.store(code_of({1, 2}), {11, {0xBB}});
  EXPECT_EQ(snapshot.begin()->second.size(), 2u);
  EXPECT_EQ(store.fetch(code_of({1, 2})).size(), 2u);
  EXPECT_EQ(store.fetch(code_of({1, 2})).back().session_id, 11u);
}

TEST(RecordStore, VisitSeesEveryEntryInKeyOrder) {
  RecordStore store;
  store.store(code_of({2, 1}), {1, {}});
  store.store(code_of({0, 1}), {2, {}});
  std::vector<std::string> keys;
  std::size_t records = 0;
  store.visit([&](const std::string& key,
                  const std::vector<StoredRecord>& list) {
    keys.push_back(key);
    records += list.size();
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_LT(keys[0], keys[1]);
  EXPECT_EQ(records, 2u);
}

TEST(RecordStore, EntriesConstructorRestoresState) {
  RecordStore original;
  original.store(code_of({1, 1}), {5, {0xCC}});
  RecordStore rebuilt(original.snapshot());
  EXPECT_EQ(rebuilt.record_count(), 1u);
  EXPECT_EQ(rebuilt.latest(code_of({1, 1}))->session_id, 5u);
}

TEST(RecordStore, ConcurrentStoreAndReadIsRaceFree) {
  RecordStore store;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, t] {
      for (int i = 0; i < 25; ++i) {
        store.store(code_of({static_cast<std::uint8_t>(t), 1}),
                    {static_cast<std::uint64_t>(i), {0xEE}});
        (void)store.record_count();
        (void)store.snapshot();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(store.record_count(), 100u);
  EXPECT_EQ(store.identifier_count(), 4u);
}

}  // namespace
}  // namespace medsen::cloud
