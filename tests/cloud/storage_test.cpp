#include "cloud/storage.h"

#include <gtest/gtest.h>

namespace medsen::cloud {
namespace {

auth::CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  auth::CytoCode code;
  code.levels = levels;
  return code;
}

TEST(RecordStore, StoreAndFetch) {
  RecordStore store;
  store.store(code_of({1, 2}), {10, {0xAA}});
  store.store(code_of({1, 2}), {11, {0xBB}});
  const auto records = store.fetch(code_of({1, 2}));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, 10u);
  EXPECT_EQ(records[1].session_id, 11u);
}

TEST(RecordStore, UnknownIdentifierEmpty) {
  RecordStore store;
  EXPECT_TRUE(store.fetch(code_of({3, 3})).empty());
  EXPECT_FALSE(store.latest(code_of({3, 3})).has_value());
}

TEST(RecordStore, LatestReturnsNewest) {
  RecordStore store;
  store.store(code_of({0, 1}), {1, {}});
  store.store(code_of({0, 1}), {2, {}});
  const auto latest = store.latest(code_of({0, 1}));
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->session_id, 2u);
}

TEST(RecordStore, IdentifiersIsolated) {
  RecordStore store;
  store.store(code_of({1, 0}), {1, {}});
  store.store(code_of({0, 1}), {2, {}});
  EXPECT_EQ(store.identifier_count(), 2u);
  EXPECT_EQ(store.record_count(), 2u);
  EXPECT_EQ(store.fetch(code_of({1, 0})).size(), 1u);
}

TEST(RecordStore, BlobContentPreserved) {
  RecordStore store;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  store.store(code_of({2, 2}), {7, blob});
  EXPECT_EQ(store.latest(code_of({2, 2}))->encrypted_result, blob);
}

}  // namespace
}  // namespace medsen::cloud
