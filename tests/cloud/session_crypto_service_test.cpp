// End-to-end tests of the EV2-style session plane across the service
// boundary: AuthChallenge/AuthResponse handshakes, command counters,
// diversified keys (zero stored per-device secrets), rotation /
// revocation, and the registry's persistence round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cloud/persistence.h"
#include "cloud/server.h"
#include "core/session_crypto.h"
#include "crypto/cmac.h"
#include "util/fileio.h"

namespace medsen::cloud {
namespace {

constexpr std::uint64_t kDevice = 7;
constexpr std::uint64_t kSeed = 0x1234;

std::vector<std::uint8_t> master_key(std::uint8_t fill) {
  return std::vector<std::uint8_t>(16, fill);
}

CloudServer make_server(ServiceConfig service = {}) {
  return CloudServer(AnalysisConfig{}, auth::CytoAlphabet{},
                     auth::ParticleClassifier::train({}),
                     auth::VerifierConfig{}, nullptr, service);
}

util::MultiChannelSeries dip_series(std::size_t dips) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  const std::size_t n = 4500 + dips * 450;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (std::size_t d = 0; d < dips; ++d) {
      const double z = (t - (5.0 + static_cast<double>(d))) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

net::Envelope upload_of(const util::MultiChannelSeries& series,
                        std::uint64_t session, std::uint64_t device,
                        std::span<const std::uint8_t> key,
                        std::uint32_t counter = 0) {
  net::SignalUploadPayload payload;
  payload.compressed = false;
  payload.sample_rate_hz = 450.0;
  payload.data = net::serialize_series(series);
  return net::make_envelope(net::MessageType::kSignalUpload, session, device,
                            payload.serialize(), key, counter);
}

net::ErrorPayload expect_error(const net::Envelope& response,
                               net::ErrorCode code) {
  EXPECT_EQ(response.type, net::MessageType::kError);
  const auto error = net::ErrorPayload::deserialize(response.payload);
  EXPECT_EQ(error.code, code) << "detail: " << error.detail;
  return error;
}

/// Run the device side of the handshake directly against handle().
bool handshake(core::SessionCrypto& crypto, std::uint64_t session,
               CloudServer& server) {
  return crypto.complete(server.handle(crypto.make_challenge(session)));
}

/// A server with one enrolled (diversified) device and the matching
/// device-side SessionCrypto, as personalization would burn it in.
struct DiversifiedRig {
  CloudServer server;
  core::SessionCrypto crypto;

  explicit DiversifiedRig(ServiceConfig service = {},
                          std::uint32_t epoch = 1)
      : server(make_server(service)),
        crypto(kDevice,
               crypto::diversify_device_key(master_key(0x5a), kDevice, epoch),
               epoch, kSeed) {
    server.rotate_master_key(epoch, master_key(0x5a));
    server.enroll_device(kDevice);
  }
};

TEST(SessionService, DiversifiedHandshakeEstablishesSession) {
  DiversifiedRig rig;
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  EXPECT_TRUE(rig.crypto.active());
  EXPECT_EQ(rig.server.sessions().active_sessions(), 1u);
  EXPECT_EQ(rig.server.stats().handshakes_completed, 1u);

  // Both ends hold the same derived session key.
  const auto server_key = rig.server.sessions().session_key(kDevice, 100);
  ASSERT_TRUE(server_key.has_value());
  EXPECT_EQ(*server_key, rig.crypto.session_mac_key());
}

TEST(SessionService, SessionCommandsRideDerivedKeyAndCounters) {
  DiversifiedRig rig;
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const auto& session_key = rig.crypto.session_mac_key();

  const auto series = dip_series(2);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto response = rig.server.handle(upload_of(
        series, 100, kDevice, session_key, rig.crypto.next_counter()));
    ASSERT_EQ(response.type, net::MessageType::kAnalysisResult);
    EXPECT_EQ(response.counter, i + 1);
    EXPECT_TRUE(net::verify_envelope(response, session_key));
  }
}

// The diversification pitch, pinned: an enrolled-only fleet leaves the
// registry holding zero per-device secrets, and every device still
// authenticates via on-demand derivation.
TEST(SessionService, ZeroStoredPerDeviceSecretsPinned) {
  auto server = make_server();
  server.rotate_master_key(1, master_key(0x5a));
  for (std::uint64_t id = 1; id <= 32; ++id) server.enroll_device(id);

  EXPECT_EQ(server.devices().size(), 32u);
  ASSERT_EQ(server.devices().stored_secret_count(), 0u);

  for (std::uint64_t id : {std::uint64_t{1}, std::uint64_t{17}}) {
    core::SessionCrypto crypto(
        id, crypto::diversify_device_key(master_key(0x5a), id, 1), 1,
        kSeed + id);
    EXPECT_TRUE(handshake(crypto, 1000 + id, server));
  }
  // Handshakes created sessions, not stored long-term secrets.
  EXPECT_EQ(server.devices().stored_secret_count(), 0u);
}

TEST(SessionService, SessionEnvelopeWithWrongKeyRejected) {
  DiversifiedRig rig;
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const std::vector<std::uint8_t> wrong_key(32, 0xee);
  const auto response = rig.server.handle(
      upload_of(dip_series(1), 100, kDevice, wrong_key, 1));
  expect_error(response, net::ErrorCode::kBadMac);
}

TEST(SessionService, CounterWithoutSessionGetsAuthRequired) {
  DiversifiedRig rig;
  // No handshake ran: a counter-stamped envelope has no session key.
  const std::vector<std::uint8_t> some_key(32, 0x11);
  const auto response = rig.server.handle(
      upload_of(dip_series(1), 100, kDevice, some_key, 1));
  expect_error(response, net::ErrorCode::kAuthRequired);
}

// The acceptance pin: a replayed session envelope is rejected with
// kStaleCounter even after the idempotency cache evicted the original
// exchange — the anti-replay window, not the cache, is the backstop.
TEST(SessionService, ReplayRejectedAfterCacheEvictionPinned) {
  ServiceConfig service;
  service.shards = 1;  // one cache shard so the flood evicts the victim
  service.session_cache_capacity = 4;
  DiversifiedRig rig(service);
  rig.server.provision_device(2, {9, 9, 9});  // the cache-flooding tenant

  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const auto& session_key = rig.crypto.session_mac_key();
  const auto command = upload_of(dip_series(1), 100, kDevice, session_key,
                                 rig.crypto.next_counter());
  ASSERT_EQ(rig.server.handle(command).type,
            net::MessageType::kAnalysisResult);

  // While cached, the byte-identical retransmit is served idempotently.
  EXPECT_EQ(rig.server.handle(command).type,
            net::MessageType::kAnalysisResult);
  EXPECT_EQ(rig.server.replays_served(), 1u);

  // Flood the 4-slot cache from another device until the exchange is
  // evicted...
  const auto series = dip_series(1);
  const std::vector<std::uint8_t> other_key = {9, 9, 9};
  for (std::uint64_t s = 1; s <= 8; ++s)
    rig.server.handle(upload_of(series, 500 + s, 2, other_key));

  // ...then replay. The cache can no longer answer, but the counter
  // window still knows counter 1 was burned.
  const auto replayed = rig.server.handle(command);
  expect_error(replayed, net::ErrorCode::kStaleCounter);
  EXPECT_GE(rig.server.stats().counter_rejections, 1u);
}

TEST(SessionService, StaleCounterBelowWindowRejected) {
  DiversifiedRig rig;
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const auto& session_key = rig.crypto.session_mac_key();

  // Advance the window far past the floor with a high counter...
  const auto series = dip_series(1);
  ASSERT_EQ(rig.server
                .handle(upload_of(series, 100, kDevice, session_key, 200))
                .type,
            net::MessageType::kAnalysisResult);
  // ...then present an ancient counter: below the 64-wide window.
  const auto response =
      rig.server.handle(upload_of(series, 100, kDevice, session_key, 3));
  expect_error(response, net::ErrorCode::kStaleCounter);
}

// Satellite pin: re-provisioning is an explicit rotation. The old key —
// and any session negotiated under it — dies at the provision call.
TEST(SessionService, ReprovisionRotatesAndKillsSessionsPinned) {
  auto server = make_server();
  const std::vector<std::uint8_t> old_key = {1, 2, 3, 4};
  const std::vector<std::uint8_t> new_key = {5, 6, 7, 8};
  ASSERT_EQ(server.provision_device(kDevice, old_key),
            DeviceRegistry::ProvisionResult::kNew);

  // Handshake on the legacy long-term key.
  core::SessionCrypto crypto(kDevice, old_key, 0, kSeed);
  ASSERT_TRUE(handshake(crypto, 100, server));
  const auto session_key = crypto.session_mac_key();

  ASSERT_EQ(server.provision_device(kDevice, new_key),
            DeviceRegistry::ProvisionResult::kRotated);

  // The old legacy plane is dead...
  expect_error(server.handle(upload_of(dip_series(1), 200, kDevice, old_key)),
               net::ErrorCode::kBadMac);
  // ...and so is the session negotiated under the old key.
  expect_error(
      server.handle(upload_of(dip_series(1), 100, kDevice, session_key, 1)),
      net::ErrorCode::kAuthRequired);
  // The new key works immediately.
  EXPECT_EQ(server.handle(upload_of(dip_series(1), 300, kDevice, new_key)).type,
            net::MessageType::kAnalysisResult);
}

TEST(SessionService, RevokedDeviceRefusedOnEveryPlane) {
  DiversifiedRig rig;
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const auto session_key = rig.crypto.session_mac_key();

  ASSERT_TRUE(rig.server.revoke_device(kDevice));

  // Session commands, fresh handshakes and (were one provisioned) legacy
  // traffic all come back kRevoked.
  expect_error(
      rig.server.handle(upload_of(dip_series(1), 100, kDevice, session_key, 1)),
      net::ErrorCode::kRevoked);
  rig.crypto.invalidate();
  expect_error(rig.server.handle(rig.crypto.make_challenge(101)),
               net::ErrorCode::kRevoked);

  // Re-enrollment clears revocation.
  rig.server.enroll_device(kDevice);
  EXPECT_TRUE(handshake(rig.crypto, 102, rig.server));
}

TEST(SessionService, MasterRotationForcesRehandshakeWithGraceWindow) {
  DiversifiedRig rig;  // personalized under epoch 1
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  const auto session_key = rig.crypto.session_mac_key();

  // New epoch: the fleet's sessions drop...
  rig.server.rotate_master_key(2, master_key(0xc3));
  expect_error(
      rig.server.handle(upload_of(dip_series(1), 100, kDevice, session_key, 1)),
      net::ErrorCode::kAuthRequired);

  // ...but the device, still personalized under epoch 1, re-handshakes
  // through the grace window (old masters derive until retired).
  rig.crypto.invalidate();
  ASSERT_TRUE(handshake(rig.crypto, 101, rig.server));
  EXPECT_EQ(rig.server.handle(upload_of(dip_series(1), 101, kDevice,
                                        rig.crypto.session_mac_key(),
                                        rig.crypto.next_counter()))
                .type,
            net::MessageType::kAnalysisResult);

  // Retiring epoch 1 closes the window: the old personalization is dead.
  ASSERT_TRUE(rig.server.devices().retire_epoch(1));
  rig.server.sessions().drop_all();
  rig.crypto.invalidate();
  expect_error(rig.server.handle(rig.crypto.make_challenge(102)),
               net::ErrorCode::kBadEpoch);
}

TEST(SessionService, LegacyPlaneCanBeDisabled) {
  ServiceConfig service;
  service.allow_legacy_plane = false;
  DiversifiedRig rig(service);
  rig.server.provision_device(3, {1, 2, 3});

  // Counter-0 command traffic is refused even with a valid legacy key...
  const std::vector<std::uint8_t> legacy_key = {1, 2, 3};
  expect_error(rig.server.handle(upload_of(dip_series(1), 50, 3, legacy_key)),
               net::ErrorCode::kAuthRequired);

  // ...but the handshake still rides counter 0, and session commands
  // flow afterwards.
  ASSERT_TRUE(handshake(rig.crypto, 100, rig.server));
  EXPECT_EQ(rig.server.handle(upload_of(dip_series(1), 100, kDevice,
                                        rig.crypto.session_mac_key(),
                                        rig.crypto.next_counter()))
                .type,
            net::MessageType::kAnalysisResult);
}

TEST(SessionService, HandshakeRetransmitServedFromCache) {
  DiversifiedRig rig;
  const auto challenge = rig.crypto.make_challenge(100);
  const auto first = rig.server.handle(challenge);
  ASSERT_EQ(first.type, net::MessageType::kAuthResponse);

  // A byte-identical ARQ retransmit must return the same response, not
  // run a second handshake (which would re-key the session under the
  // device's feet).
  const auto second = rig.server.handle(challenge);
  EXPECT_EQ(first.serialize(), second.serialize());
  EXPECT_EQ(rig.server.stats().handshakes_completed, 1u);
  ASSERT_TRUE(rig.crypto.complete(second));
}

TEST(RegistryPersistence, RoundTripsAllKeyingState) {
  DeviceRegistry registry(4);
  registry.provision(1, {1, 2, 3});
  registry.provision(2, {4, 5, 6});
  registry.set_master_key(1, master_key(0x5a));
  registry.set_master_key(2, master_key(0xc3));
  registry.enroll(10);
  registry.enroll(11);
  registry.revoke(2);
  registry.revoke(11);

  const std::string path = testing::TempDir() + "/registry_roundtrip.bin";
  save_registry(registry, path);

  DeviceRegistry loaded(8);  // shard count is a process detail, not state
  load_registry(loaded, path);

  EXPECT_EQ(loaded.current_epoch(), 2u);
  EXPECT_TRUE(loaded.has_epoch(1));
  EXPECT_EQ(loaded.lookup(1), registry.lookup(1));
  EXPECT_EQ(loaded.lookup(10), registry.lookup(10));
  EXPECT_EQ(loaded.lookup_epoch(10, 1), registry.lookup_epoch(10, 1));
  EXPECT_TRUE(loaded.is_revoked(2));
  EXPECT_TRUE(loaded.is_revoked(11));
  EXPECT_EQ(loaded.stored_secret_count(), registry.stored_secret_count());

  // Deterministic serialization: a second save is byte-identical.
  const std::string again = testing::TempDir() + "/registry_again.bin";
  save_registry(loaded, again);
  EXPECT_EQ(util::read_file(path), util::read_file(again));
}

TEST(RegistryPersistence, RejectsCorruptFile) {
  DeviceRegistry registry(2);
  registry.provision(1, {1, 2, 3});
  const std::string path = testing::TempDir() + "/registry_corrupt.bin";
  save_registry(registry, path);

  auto bytes = util::read_file(path);
  bytes[bytes.size() / 2] ^= 0xff;
  util::write_file_atomic(path, bytes);

  DeviceRegistry loaded(2);
  EXPECT_THROW(load_registry(loaded, path), std::runtime_error);
}

}  // namespace
}  // namespace medsen::cloud
