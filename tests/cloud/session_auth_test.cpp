#include "cloud/session_auth.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace medsen::cloud {
namespace {

std::vector<std::uint8_t> test_key(std::uint8_t fill) {
  return std::vector<std::uint8_t>(32, fill);
}

TEST(SessionAuth, NoSessionUntilEstablished) {
  SessionAuthTable table(4);
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kNoSession);
  EXPECT_FALSE(table.session_key(1, 100).has_value());
  EXPECT_EQ(table.active_sessions(), 0u);

  table.establish(1, 100, test_key(0xaa));
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kFresh);
  ASSERT_TRUE(table.session_key(1, 100).has_value());
  EXPECT_EQ(*table.session_key(1, 100), test_key(0xaa));
  EXPECT_EQ(table.active_sessions(), 1u);
}

TEST(SessionAuth, WrongSessionIdIsNoSession) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  EXPECT_EQ(table.classify(1, 999, 1), CounterStatus::kNoSession);
  EXPECT_FALSE(table.session_key(1, 999).has_value());
}

TEST(SessionAuth, CounterZeroIsNeverSessionPlane) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  // Counter 0 is the legacy/handshake plane; the session plane counts
  // from 1, so 0 can never be fresh here.
  EXPECT_EQ(table.classify(1, 100, 0), CounterStatus::kStale);
}

TEST(SessionAuth, MonotonicCommitAndReplay) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));

  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kFresh);
  table.commit(1, 100, 1);
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kReplay);
  EXPECT_EQ(table.classify(1, 100, 2), CounterStatus::kFresh);
}

// ARQ retransmissions can deliver counters out of order; the window must
// accept a skipped counter exactly once.
TEST(SessionAuth, WindowToleratesOutOfOrderDelivery) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.commit(1, 100, 3);  // 1 and 2 still in flight

  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kFresh);
  EXPECT_EQ(table.classify(1, 100, 2), CounterStatus::kFresh);
  table.commit(1, 100, 1);
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kReplay);
  EXPECT_EQ(table.classify(1, 100, 2), CounterStatus::kFresh);
  EXPECT_EQ(table.classify(1, 100, 3), CounterStatus::kReplay);
}

TEST(SessionAuth, BelowWindowFloorIsStale) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.commit(1, 100, 100);

  // 100 - 64 = 36: ages >= kWindowSize are unservable.
  EXPECT_EQ(table.classify(1, 100, 36), CounterStatus::kStale);
  EXPECT_EQ(table.classify(1, 100, 37), CounterStatus::kFresh);
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kStale);
}

// A jump wider than the window must clear every stale bit — old bits
// left behind would mark never-seen counters as replays.
TEST(SessionAuth, WideJumpClearsTheWindow) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.commit(1, 100, 1);
  table.commit(1, 100, 2);
  table.commit(1, 100, 500);

  EXPECT_EQ(table.classify(1, 100, 500), CounterStatus::kReplay);
  EXPECT_EQ(table.classify(1, 100, 499), CounterStatus::kFresh);
  EXPECT_EQ(table.classify(1, 100, 437), CounterStatus::kFresh);
  EXPECT_EQ(table.classify(1, 100, 436), CounterStatus::kStale);
}

// Classification must not mutate: an admission-shed command retries with
// the same counter, so only commit() burns it.
TEST(SessionAuth, ClassifyIsPure) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kFresh);
}

TEST(SessionAuth, ReKeyReplacesStateAtomically) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.commit(1, 100, 7);

  table.establish(1, 200, test_key(0xbb));
  // The old session is gone...
  EXPECT_EQ(table.classify(1, 100, 8), CounterStatus::kNoSession);
  EXPECT_FALSE(table.session_key(1, 100).has_value());
  // ...and the new one counts from scratch.
  EXPECT_EQ(table.classify(1, 200, 1), CounterStatus::kFresh);
  EXPECT_EQ(*table.session_key(1, 200), test_key(0xbb));
  EXPECT_EQ(table.active_sessions(), 1u);
}

TEST(SessionAuth, CommitAfterDropDoesNotResurrect) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.drop(1);
  table.commit(1, 100, 1);  // re-key raced a slow command: must be a no-op
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kNoSession);
  EXPECT_EQ(table.active_sessions(), 0u);
}

TEST(SessionAuth, DropAllClearsEveryDevice) {
  SessionAuthTable table(4);
  table.establish(1, 100, test_key(0xaa));
  table.establish(2, 200, test_key(0xbb));
  EXPECT_EQ(table.active_sessions(), 2u);
  table.drop_all();
  EXPECT_EQ(table.active_sessions(), 0u);
  EXPECT_EQ(table.classify(1, 100, 1), CounterStatus::kNoSession);
  EXPECT_EQ(table.classify(2, 200, 1), CounterStatus::kNoSession);
}

// Handshake ordinals are the nonce-derivation context: they must be
// strictly increasing per device and survive session teardown, or a
// re-handshake after drop() could repeat a server nonce.
TEST(SessionAuth, HandshakeSeqSurvivesDrops) {
  SessionAuthTable table(4);
  const auto s1 = table.next_handshake_seq(1);
  const auto s2 = table.next_handshake_seq(1);
  EXPECT_GT(s2, s1);

  table.establish(1, 100, test_key(0xaa));
  table.drop(1);
  EXPECT_GT(table.next_handshake_seq(1), s2);

  table.establish(1, 100, test_key(0xaa));
  table.drop_all();
  const auto s4 = table.next_handshake_seq(1);
  EXPECT_GT(s4, s2);
  // Per-device, not global.
  EXPECT_EQ(table.next_handshake_seq(2), 1u);
}

}  // namespace
}  // namespace medsen::cloud
