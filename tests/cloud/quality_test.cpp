#include "cloud/quality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"
#include "sim/signal_synth.h"

namespace medsen::cloud {
namespace {

util::MultiChannelSeries healthy_series(std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  const std::size_t n = 9000;
  sim::DriftConfig drift;
  auto samples = sim::synth_baseline(n, 450.0, 0.0, drift, rng);
  std::vector<double> depth(n, 0.0);
  sim::add_gaussian_pulse(depth, 450.0, 0.0, 10.0, 0.01, 0.01);
  for (std::size_t i = 0; i < n; ++i) samples[i] *= 1.0 - depth[i];
  sim::add_white_noise(samples, 1.2e-4, rng);

  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::move(samples));
  return series;
}

TEST(Quality, HealthyAcquisitionAccepted) {
  const auto report = assess_quality(healthy_series(1));
  EXPECT_TRUE(report.acceptable) << report.reason;
  ASSERT_EQ(report.channels.size(), 1u);
  EXPECT_LT(report.channels[0].noise_rms, 1e-3);
}

TEST(Quality, EmptySeriesRejected) {
  const auto report = assess_quality(util::MultiChannelSeries{});
  EXPECT_FALSE(report.acceptable);
  EXPECT_EQ(report.reason, "no channels");
}

TEST(Quality, ExcessNoiseRejected) {
  auto series = healthy_series(2);
  crypto::ChaChaRng rng(3);
  sim::add_white_noise(series.channels[0].storage(), 5e-3, rng);
  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("noise"), std::string::npos);
}

TEST(Quality, SaturationRejected) {
  auto series = healthy_series(4);
  for (std::size_t i = 0; i < 500; ++i)
    series.channels[0][i] = 2.5;  // clipped electronics
  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("saturated"), std::string::npos);
}

TEST(Quality, DropoutsRejected) {
  auto series = healthy_series(5);
  // A stuck ADC: a long run of identical samples.
  for (std::size_t i = 1000; i < 2500; ++i) series.channels[0][i] = 1.0;
  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("dropout"), std::string::npos);
}

TEST(Quality, DriftOutOfRangeRejected) {
  auto series = healthy_series(6);
  const std::size_t n = series.channels[0].size();
  for (std::size_t i = 0; i < n; ++i)
    series.channels[0][i] +=
        0.4 * static_cast<double>(i) / static_cast<double>(n);
  QualityConfig config;
  config.max_plausible = 2.0;  // keep saturation check out of the way
  const auto report = assess_quality(series, config);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("drift"), std::string::npos);
}

TEST(Quality, ReportsFirstBadChannel) {
  auto series = healthy_series(7);
  series.channels.push_back(util::TimeSeries(450.0));  // empty channel 1
  series.carrier_frequencies_hz.push_back(2.0e6);
  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("channel 1"), std::string::npos);
}

TEST(Quality, EveryCheckIsScoredNotJustTheFirstFailure) {
  // A channel both saturated AND full of dropouts must report both
  // failures: recovery planning needs the full signature, not the first
  // check that happened to trip.
  auto series = healthy_series(8);
  for (std::size_t i = 0; i < 2500; ++i) series.channels[0][i] = 2.5;
  const auto report = assess_quality(series);
  ASSERT_EQ(report.channels.size(), 1u);
  const auto& channel = report.channels[0];
  EXPECT_TRUE(channel.failed(QualityReason::kSaturated));
  EXPECT_TRUE(channel.failed(QualityReason::kDropout));
  // The summary stays the single most severe reason for wire compat.
  EXPECT_EQ(report.reason_code, QualityReason::kSaturated);
  EXPECT_EQ(channel.worst, QualityReason::kSaturated);
}

TEST(Quality, PerChannelReasonBytesMatchWorstPerChannel) {
  auto series = healthy_series(9);
  auto bad = healthy_series(10);
  crypto::ChaChaRng rng(11);
  sim::add_white_noise(bad.channels[0].storage(), 5e-3, rng);
  series.channels.push_back(bad.channels[0]);
  series.carrier_frequencies_hz.push_back(2.0e6);

  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  const auto bytes = report.channel_reason_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0],
            static_cast<std::uint8_t>(QualityReason::kNone));
  EXPECT_EQ(bytes[1],
            static_cast<std::uint8_t>(QualityReason::kNoiseFloor));
}

TEST(Quality, MultipleFailingChannelsNotedInSummary) {
  auto series = healthy_series(12);
  series.channels.push_back(series.channels[0]);
  series.carrier_frequencies_hz.push_back(2.0e6);
  for (auto& channel : series.channels)
    for (std::size_t i = 0; i < 500; ++i) channel[i] = 2.5;
  const auto report = assess_quality(series);
  EXPECT_FALSE(report.acceptable);
  EXPECT_NE(report.reason.find("channel 0"), std::string::npos);
  EXPECT_NE(report.reason.find("+1 more failing channel"),
            std::string::npos);
}

}  // namespace
}  // namespace medsen::cloud
