// cloud::Journal: append/replay round trips, LSN continuity across
// compaction, and the two corruption sweeps the issue demands — every
// truncation prefix and every single-bit flip of a populated journal
// must either recover cleanly (torn tail) or throw the typed
// PersistenceError (interior damage), never crash, hang, or silently
// load garbage.

#include "cloud/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/crash_point.h"
#include "util/fileio.h"

namespace medsen::cloud {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/medsen_journal_" + name;
}

std::vector<std::uint8_t> payload_of(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

/// A journal with three records, closed so the file is on disk.
void write_three_records(const std::string& path) {
  std::remove(path.c_str());
  Journal journal(path);
  journal.append(JournalRecordType::kDeviceEnrolled, payload_of({1}));
  journal.append(JournalRecordType::kRecordStored, payload_of({2, 2}));
  journal.append(JournalRecordType::kHandshake, payload_of({3, 3, 3}));
}

TEST(Journal, AppendThenReopenReplaysInOrder) {
  const auto path = temp_path("roundtrip.wal");
  write_three_records(path);

  Journal reopened(path);
  EXPECT_FALSE(reopened.open_stats().tail_truncated);
  const auto records = reopened.take_recovered();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].type, JournalRecordType::kDeviceEnrolled);
  EXPECT_EQ(records[0].payload, payload_of({1}));
  EXPECT_EQ(records[1].lsn, 2u);
  EXPECT_EQ(records[2].lsn, 3u);
  EXPECT_EQ(records[2].payload, payload_of({3, 3, 3}));
  EXPECT_EQ(reopened.last_lsn(), 3u);
  std::remove(path.c_str());
}

TEST(Journal, LsnsSurviveCompaction) {
  const auto path = temp_path("compact.wal");
  std::remove(path.c_str());
  {
    Journal journal(path);
    journal.append(JournalRecordType::kDeviceEnrolled, payload_of({1}));
    journal.append(JournalRecordType::kDeviceEnrolled, payload_of({2}));
    journal.truncate_all();
    EXPECT_EQ(journal.appended_since_compaction(), 0u);
    // The sequence continues past the truncation.
    EXPECT_EQ(journal.append(JournalRecordType::kDeviceRevoked,
                             payload_of({3})),
              3u);
  }
  Journal reopened(path);
  const auto records = reopened.take_recovered();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, 3u);
  std::remove(path.c_str());
}

TEST(Journal, EveryTruncationPrefixRecoversOrReinitializes) {
  const auto path = temp_path("truncsweep.wal");
  write_three_records(path);
  const auto full = util::read_file(path);

  for (std::size_t len = 0; len <= full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(), full.begin() + len);
    util::write_file(path, prefix);
    // Truncation damage always reaches EOF, so open() must ALWAYS
    // succeed here: shorter than a header reinitializes, anything else
    // is a torn tail that truncates to the longest valid prefix.
    Journal journal(path);
    const auto records = journal.take_recovered();
    for (std::size_t i = 0; i < records.size(); ++i)
      EXPECT_EQ(records[i].lsn, i + 1) << "prefix len " << len;
    EXPECT_LE(records.size(), 3u);
    // The journal must stay appendable after recovery.
    journal.append(JournalRecordType::kDeviceEnrolled, payload_of({9}));
  }
  std::remove(path.c_str());
}

TEST(Journal, EveryBitFlipRecoversTailOrThrowsTyped) {
  const auto path = temp_path("bitflip.wal");
  write_three_records(path);
  const auto full = util::read_file(path);

  std::size_t recovered_runs = 0;
  std::size_t rejected_runs = 0;
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = full;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      util::write_file(path, corrupt);
      try {
        Journal journal(path);
        // Open succeeded: whatever it recovered must be a clean prefix.
        const auto records = journal.take_recovered();
        for (std::size_t i = 0; i < records.size(); ++i)
          EXPECT_EQ(records[i].lsn, i + 1)
              << "byte " << byte << " bit " << bit;
        ++recovered_runs;
      } catch (const PersistenceError&) {
        // Interior damage (or a broken header) rejected with the typed
        // error — also acceptable, never UB.
        ++rejected_runs;
      }
    }
  }
  // Both outcomes must actually occur across the sweep: header/interior
  // flips reject, final-record flips truncate-and-recover.
  EXPECT_GT(recovered_runs, 0u);
  EXPECT_GT(rejected_runs, 0u);
  std::remove(path.c_str());
}

TEST(Journal, InteriorCorruptionThrowsNotTruncates) {
  const auto path = temp_path("interior.wal");
  write_three_records(path);
  auto full = util::read_file(path);
  // Flip a byte inside the FIRST record's body (just past its 8-byte
  // frame prefix, past the 16-byte header): records follow after it, so
  // this cannot be a torn append.
  full[Journal::kHeaderSize + 8 + 2] ^= 0xFF;
  util::write_file(path, full);
  EXPECT_THROW(Journal{path}, PersistenceError);
  std::remove(path.c_str());
}

TEST(Journal, ForeignMagicIsRejectedNotWiped) {
  const auto path = temp_path("foreign.wal");
  std::vector<std::uint8_t> not_a_journal(64, 0x5A);
  util::write_file(path, not_a_journal);
  EXPECT_THROW(Journal{path}, PersistenceError);
  // The file must be untouched — foreign state is never reinitialized.
  EXPECT_EQ(util::read_file(path), not_a_journal);
  std::remove(path.c_str());
}

TEST(Journal, TornAppendCrashLeavesRecoverableTail) {
  const auto path = temp_path("torncrash.wal");
  std::remove(path.c_str());
  {
    Journal journal(path);
    journal.append(JournalRecordType::kDeviceEnrolled, payload_of({1}));
    util::ScopedCrashArm armed("journal.append.torn");
    EXPECT_THROW(journal.append(JournalRecordType::kRecordStored,
                                payload_of({0xEE, 0xEE, 0xEE, 0xEE})),
                 util::SimulatedCrash);
  }
  Journal reopened(path);
  EXPECT_TRUE(reopened.open_stats().tail_truncated);
  const auto records = reopened.take_recovered();
  ASSERT_EQ(records.size(), 1u);  // the torn append was never acked
  EXPECT_EQ(records[0].lsn, 1u);
  // The tail is clean again: the next append lands at LSN 2.
  EXPECT_EQ(reopened.append(JournalRecordType::kRecordStored,
                            payload_of({2})),
            2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace medsen::cloud
