#include "net/faulty_link.h"

#include <gtest/gtest.h>

namespace medsen::net {
namespace {

std::vector<std::uint8_t> datagram(std::uint8_t tag, std::size_t n = 32) {
  std::vector<std::uint8_t> d(n, tag);
  return d;
}

TEST(FaultyLink, LosslessDeliversInOrder) {
  SimulatedClock clock;
  FaultyLink link(lte_uplink(), FaultConfig{}, &clock);
  link.send(datagram(1));
  link.send(datagram(2));
  EXPECT_EQ(link.try_receive()->front(), 1);
  EXPECT_EQ(link.try_receive()->front(), 2);
  EXPECT_FALSE(link.try_receive().has_value());
  EXPECT_EQ(link.counters().delivered, 2u);
  EXPECT_EQ(link.counters().dropped, 0u);
}

TEST(FaultyLink, ChargesTransferTimeToClock) {
  SimulatedClock clock;
  const LinkModel model = lte_uplink();
  FaultyLink link(model, FaultConfig{}, &clock);
  link.send(datagram(1, 1000));
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), model.transfer_time_s(1000));
  // Dropped datagrams still burn air time.
  FaultConfig drop_all;
  drop_all.drop_rate = 1.0;
  SimulatedClock clock2;
  FaultyLink lossy(model, drop_all, &clock2);
  lossy.send(datagram(1, 1000));
  EXPECT_DOUBLE_EQ(clock2.elapsed_s(), model.transfer_time_s(1000));
  EXPECT_FALSE(lossy.try_receive().has_value());
}

TEST(FaultyLink, DropRateIsDeterministicAndRoughlyCalibrated) {
  FaultConfig faults;
  faults.drop_rate = 0.25;
  faults.seed = 42;
  const auto run = [&] {
    FaultyLink link(lte_uplink(), faults, nullptr);
    for (int i = 0; i < 1000; ++i) link.send(datagram(1));
    return link.counters().dropped;
  };
  const auto dropped = run();
  EXPECT_EQ(dropped, run());  // same seed, same fault pattern
  EXPECT_GT(dropped, 200u);
  EXPECT_LT(dropped, 300u);
}

TEST(FaultyLink, CorruptNextFlipsExactlyOneBit) {
  FaultyLink link(lte_uplink(), FaultConfig{}, nullptr);
  link.corrupt_next();
  link.send(datagram(0x00, 16));
  const auto got = link.try_receive();
  ASSERT_TRUE(got.has_value());
  int set_bits = 0;
  for (const auto b : *got)
    for (int i = 0; i < 8; ++i) set_bits += (b >> i) & 1;
  EXPECT_EQ(set_bits, 1);
  EXPECT_EQ(link.counters().corrupted, 1u);
  // Only the *next* send is forced.
  link.send(datagram(0x00, 16));
  EXPECT_EQ(link.counters().corrupted, 1u);
}

TEST(FaultyLink, DuplicateDeliversTwice) {
  FaultConfig faults;
  faults.duplicate_rate = 1.0;
  FaultyLink link(lte_uplink(), faults, nullptr);
  link.send(datagram(7));
  EXPECT_EQ(link.try_receive()->front(), 7);
  EXPECT_EQ(link.try_receive()->front(), 7);
  EXPECT_FALSE(link.try_receive().has_value());
  EXPECT_EQ(link.counters().duplicated, 1u);
}

TEST(FaultyLink, ReorderHoldsDatagramBehindTheNext) {
  FaultConfig faults;
  faults.reorder_rate = 1.0;
  FaultyLink link(lte_uplink(), faults, nullptr);
  link.send(datagram(1));  // held
  EXPECT_FALSE(link.try_receive().has_value());
  link.send(datagram(2));  // delivered, then releases 1 behind it
  EXPECT_EQ(link.try_receive()->front(), 2);
  EXPECT_EQ(link.try_receive()->front(), 1);
  EXPECT_GE(link.counters().reordered, 1u);
}

TEST(FaultyLink, FlushReleasesHeldDatagram) {
  FaultConfig faults;
  faults.reorder_rate = 1.0;
  FaultyLink link(lte_uplink(), faults, nullptr);
  link.send(datagram(9));
  EXPECT_FALSE(link.try_receive().has_value());
  link.flush();
  EXPECT_EQ(link.try_receive()->front(), 9);
}

}  // namespace
}  // namespace medsen::net
