#include "net/reliable.h"

#include <gtest/gtest.h>

#include <numeric>

namespace medsen::net {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  std::iota(data.begin(), data.end(), std::uint8_t{0});
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xFF);
  return data;
}

struct Harness {
  SimulatedClock clock;
  FaultyLink up;
  FaultyLink down;
  ReliableChannel channel;

  explicit Harness(FaultConfig up_faults = {}, FaultConfig down_faults = {},
                   ReliableConfig config = {})
      : up(lte_uplink(), up_faults, &clock),
        down(lte_downlink(), down_faults, &clock),
        channel(up, down, clock, config) {}
};

TEST(ReliableChannel, LosslessSingleChunkRoundTrip) {
  Harness h;
  const auto data = pattern_bytes(512);
  EXPECT_EQ(h.channel.transfer(data), data);
  EXPECT_EQ(h.channel.stats().request.chunks, 1u);
  EXPECT_EQ(h.channel.stats().request.retransmissions, 0u);
  EXPECT_TRUE(h.channel.stats().request.succeeded);
  EXPECT_GT(h.channel.stats().request.elapsed_s, 0.0);
}

TEST(ReliableChannel, LargePayloadIsChunked) {
  ReliableConfig config;
  config.chunk_bytes = 1024;
  Harness h({}, {}, config);
  const auto data = pattern_bytes(10 * 1024 + 37);
  EXPECT_EQ(h.channel.transfer(data), data);
  EXPECT_EQ(h.channel.stats().request.chunks, 11u);
}

TEST(ReliableChannel, EmptyPayloadTransfers) {
  Harness h;
  EXPECT_TRUE(h.channel.transfer({}).empty());
  EXPECT_EQ(h.channel.stats().request.chunks, 1u);
}

TEST(ReliableChannel, BitIdenticalUnderHeavyFaults) {
  FaultConfig faults;
  faults.drop_rate = 0.10;
  faults.corrupt_rate = 0.02;
  faults.duplicate_rate = 0.05;
  faults.reorder_rate = 0.05;
  faults.seed = 7;
  ReliableConfig config;
  config.chunk_bytes = 512;
  config.retry_budget = 200;
  Harness h(faults, faults, config);
  const auto data = pattern_bytes(8 * 1024);
  EXPECT_EQ(h.channel.transfer(data), data);
  EXPECT_GT(h.channel.stats().request.retransmissions, 0u);
}

TEST(ReliableChannel, CorruptedChunkRetransmitsExactlyOnce) {
  Harness h;
  h.up.corrupt_next();  // CRC kills the first copy of chunk 0
  const auto data = pattern_bytes(256);
  EXPECT_EQ(h.channel.transfer(data), data);
  const auto& stats = h.channel.stats().request;
  EXPECT_EQ(stats.retransmissions, 1u);
  EXPECT_EQ(stats.rejected_frames, 1u);
  EXPECT_TRUE(stats.succeeded);
}

TEST(ReliableChannel, OneCorruptChunkDoesNotResendTheOthers) {
  ReliableConfig config;
  config.chunk_bytes = 256;
  Harness h({}, {}, config);
  const auto data = pattern_bytes(8 * 256);  // 8 chunks
  h.up.corrupt_next();
  EXPECT_EQ(h.channel.transfer(data), data);
  // Only the corrupted chunk was retransmitted; 8 clean sends + 1 retry.
  EXPECT_EQ(h.channel.stats().request.retransmissions, 1u);
  EXPECT_EQ(h.up.counters().sent, 9u);
}

TEST(ReliableChannel, TotalLossExhaustsBudgetAndThrows) {
  FaultConfig black_hole;
  black_hole.drop_rate = 1.0;
  ReliableConfig config;
  config.retry_budget = 5;
  Harness h(black_hole, {}, config);
  EXPECT_THROW((void)h.channel.transfer(pattern_bytes(64)), TransportError);
}

TEST(ReliableChannel, RequestReturnsNulloptOnTotalLoss) {
  FaultConfig black_hole;
  black_hole.drop_rate = 1.0;
  ReliableConfig config;
  config.retry_budget = 3;
  Harness h(black_hole, {}, config);
  bool handler_ran = false;
  const auto result = h.channel.request(
      pattern_bytes(64), [&](std::span<const std::uint8_t>) {
        handler_ran = true;
        return std::vector<std::uint8_t>{};
      });
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(handler_ran);  // the request never arrived
  EXPECT_FALSE(h.channel.stats().request.succeeded);
  EXPECT_EQ(h.channel.stats().request.retransmissions, 3u);
}

TEST(ReliableChannel, RequestResponseExchange) {
  Harness h;
  const auto request = pattern_bytes(300);
  const auto result =
      h.channel.request(request, [&](std::span<const std::uint8_t> req) {
        std::vector<std::uint8_t> echoed(req.begin(), req.end());
        echoed.push_back(0xEE);
        return echoed;
      });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), request.size() + 1);
  EXPECT_EQ(result->back(), 0xEE);
  EXPECT_TRUE(h.channel.stats().response.succeeded);
}

TEST(ReliableChannel, TimeoutsChargeSimulatedTimeWithBackoff) {
  FaultConfig black_hole;
  black_hole.drop_rate = 1.0;
  ReliableConfig config;
  config.retry_budget = 3;
  config.initial_timeout_s = 0.1;
  config.backoff_factor = 2.0;
  config.max_timeout_s = 10.0;
  Harness h(black_hole, {}, config);
  EXPECT_THROW((void)h.channel.transfer(pattern_bytes(64)), TransportError);
  // 4 attempts (initial + 3 retries) waited 0.1 + 0.2 + 0.4 + 0.8 s of
  // ACK timeout, plus a small per-send air time.
  EXPECT_GT(h.clock.elapsed_s(), 1.5);
  EXPECT_LT(h.clock.elapsed_s(), 1.7);
}

TEST(ReliableChannel, DeterministicAcrossRuns) {
  FaultConfig faults;
  faults.drop_rate = 0.2;
  faults.corrupt_rate = 0.05;
  faults.duplicate_rate = 0.05;
  faults.seed = 99;
  ReliableConfig config;
  config.chunk_bytes = 128;
  config.retry_budget = 500;
  const auto run = [&] {
    Harness h(faults, faults, config);
    (void)h.channel.transfer(pattern_bytes(2048));
    return std::pair<double, std::size_t>(
        h.clock.elapsed_s(), h.channel.stats().request.retransmissions);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace medsen::net
