#include "net/frame.h"

#include <gtest/gtest.h>

namespace medsen::net {
namespace {

TEST(Frame, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = frame_encode(payload);
  EXPECT_EQ(frame.size(), payload.size() + frame_overhead());
  EXPECT_EQ(frame_decode(frame), payload);
}

TEST(Frame, EmptyPayload) {
  const auto frame = frame_encode({});
  EXPECT_TRUE(frame_decode(frame).empty());
}

TEST(Frame, BadMagicThrows) {
  std::vector<std::uint8_t> payload = {1, 2, 3};
  auto frame = frame_encode(payload);
  frame[0] ^= 0xFF;
  EXPECT_THROW(frame_decode(frame), std::runtime_error);
}

TEST(Frame, CorruptedPayloadThrows) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  auto frame = frame_encode(payload);
  frame[9] ^= 0x01;  // inside payload
  EXPECT_THROW(frame_decode(frame), std::runtime_error);
}

TEST(Frame, CorruptedCrcThrows) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  auto frame = frame_encode(payload);
  frame.back() ^= 0x01;
  EXPECT_THROW(frame_decode(frame), std::runtime_error);
}

TEST(Frame, TrailingBytesRejected) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  auto frame = frame_encode(payload);
  frame.push_back(0x00);  // garbage after the CRC
  EXPECT_THROW(frame_decode(frame), std::runtime_error);
  frame.pop_back();
  EXPECT_EQ(frame_decode(frame), payload);  // pristine frame still decodes
}

TEST(Frame, ConcatenatedFramesRejected) {
  // Two valid frames back to back must not silently decode as the first.
  const std::vector<std::uint8_t> p1 = {1, 2, 3}, p2 = {4, 5};
  const auto first = frame_encode(p1);
  const auto second = frame_encode(p2);
  auto both = first;
  both.insert(both.end(), second.begin(), second.end());
  EXPECT_THROW(frame_decode(both), std::runtime_error);
}

TEST(Frame, TruncatedThrows) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  auto frame = frame_encode(payload);
  const std::span<const std::uint8_t> cut(frame.data(), frame.size() - 2);
  EXPECT_THROW(frame_decode(cut), std::runtime_error);
}

}  // namespace
}  // namespace medsen::net
