#include "net/link.h"

#include <gtest/gtest.h>

namespace medsen::net {
namespace {

TEST(Link, TransferTimeScalesWithBytes) {
  LinkModel link{10.0e6, 0.0, 0.0};  // 10 Mbps, no latency
  EXPECT_NEAR(link.transfer_time_s(1250000), 1.0, 1e-9);  // 10 Mbit
  EXPECT_NEAR(link.transfer_time_s(0), 0.0, 1e-12);
}

TEST(Link, LatencyAddsHalfRttPlusOverhead) {
  LinkModel link{1.0e9, 0.100, 0.010};
  EXPECT_NEAR(link.transfer_time_s(0), 0.060, 1e-9);
}

TEST(Link, ProfilesAreSane) {
  // Uplink slower than downlink; USB much faster than both.
  EXPECT_LT(lte_uplink().bandwidth_bps, lte_downlink().bandwidth_bps);
  EXPECT_GT(usb_accessory().bandwidth_bps, lte_downlink().bandwidth_bps);
  EXPECT_LT(usb_accessory().rtt_s, lte_uplink().rtt_s);
}

TEST(Link, SmallMessageDominatedByLatency) {
  const LinkModel lte = lte_uplink();
  const double t = lte.transfer_time_s(100);
  EXPECT_GT(t, lte.rtt_s / 2.0);
  EXPECT_LT(t, lte.rtt_s / 2.0 + lte.per_message_overhead_s + 0.001);
}

TEST(SimulatedClock, Accumulates) {
  SimulatedClock clock;
  clock.advance(0.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), 0.75);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), 0.0);
}

}  // namespace
}  // namespace medsen::net
