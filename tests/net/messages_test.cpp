#include "net/messages.h"

#include <gtest/gtest.h>

#include "util/serialize.h"

namespace medsen::net {
namespace {

const std::vector<std::uint8_t> kKey = {1, 2, 3, 4, 5, 6, 7, 8};

TEST(Messages, EnvelopeRoundTrip) {
  const auto envelope =
      make_envelope(MessageType::kSignalUpload, 42, 17, {9, 8, 7}, kKey);
  const auto restored = Envelope::deserialize(envelope.serialize());
  EXPECT_EQ(restored.type, MessageType::kSignalUpload);
  EXPECT_EQ(restored.session_id, 42u);
  EXPECT_EQ(restored.device_id, 17u);
  EXPECT_EQ(restored.payload, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_TRUE(verify_envelope(restored, kKey));
}

TEST(Messages, TamperedPayloadFailsMac) {
  auto envelope = make_envelope(MessageType::kSignalUpload, 1, 1, {1, 2}, kKey);
  envelope.payload[0] ^= 0xFF;
  EXPECT_FALSE(verify_envelope(envelope, kKey));
}

TEST(Messages, TamperedSessionIdFailsMac) {
  auto envelope = make_envelope(MessageType::kSignalUpload, 1, 1, {1, 2}, kKey);
  envelope.session_id = 2;
  EXPECT_FALSE(verify_envelope(envelope, kKey));
}

TEST(Messages, TamperedDeviceIdFailsMac) {
  // The device_id binds the envelope to its tenant; a relay must not be
  // able to re-attribute a request to another dongle.
  auto envelope = make_envelope(MessageType::kSignalUpload, 1, 4, {1, 2}, kKey);
  envelope.device_id = 5;
  EXPECT_FALSE(verify_envelope(envelope, kKey));
}

TEST(Messages, EnvelopeCounterRoundTrip) {
  const auto envelope =
      make_envelope(MessageType::kSignalUpload, 42, 17, {9, 8, 7}, kKey, 31);
  const auto restored = Envelope::deserialize(envelope.serialize());
  EXPECT_EQ(restored.counter, 31u);
  EXPECT_TRUE(verify_envelope(restored, kKey));
}

TEST(Messages, TamperedCounterFailsMac) {
  // The command counter is the anti-replay ordinal; a relay must not be
  // able to rewrite it without breaking the MAC.
  auto envelope =
      make_envelope(MessageType::kSignalUpload, 1, 1, {1, 2}, kKey, 5);
  envelope.counter = 6;
  EXPECT_FALSE(verify_envelope(envelope, kKey));
}

TEST(Messages, WrongKeyFailsMac) {
  const auto envelope =
      make_envelope(MessageType::kSignalUpload, 1, 1, {1, 2}, kKey);
  const std::vector<std::uint8_t> other = {9, 9, 9};
  EXPECT_FALSE(verify_envelope(envelope, other));
}

TEST(Messages, SignalUploadPayloadRoundTrip) {
  SignalUploadPayload payload;
  payload.compressed = true;
  payload.sample_rate_hz = 450.0;
  payload.data = {1, 2, 3};
  const auto restored =
      SignalUploadPayload::deserialize(payload.serialize());
  EXPECT_TRUE(restored.compressed);
  EXPECT_DOUBLE_EQ(restored.sample_rate_hz, 450.0);
  EXPECT_EQ(restored.data, payload.data);
}

TEST(Messages, AuthPassPayloadRoundTrip) {
  AuthPassPayload pass;
  pass.upload.compressed = true;
  pass.upload.sample_rate_hz = 450.0;
  pass.upload.data = {4, 5, 6};
  pass.volume_ul = 0.75;
  pass.duration_s = 420.0;
  const auto restored = AuthPassPayload::deserialize(pass.serialize());
  EXPECT_TRUE(restored.upload.compressed);
  EXPECT_EQ(restored.upload.data, pass.upload.data);
  EXPECT_DOUBLE_EQ(restored.volume_ul, 0.75);
  EXPECT_DOUBLE_EQ(restored.duration_s, 420.0);
}

TEST(Messages, ErrorPayloadRoundTrip) {
  ErrorPayload error;
  error.code = ErrorCode::kQualityRejected;
  error.subcode = 3;
  error.detail = "acquisition rejected (saturated)";
  const auto restored = ErrorPayload::deserialize(error.serialize());
  EXPECT_EQ(restored.code, ErrorCode::kQualityRejected);
  EXPECT_EQ(restored.subcode, 3u);
  EXPECT_EQ(restored.detail, "acquisition rejected (saturated)");
  EXPECT_TRUE(restored.channel_reasons.empty());
}

TEST(Messages, ErrorPayloadChannelReasonsRoundTrip) {
  ErrorPayload error;
  error.code = ErrorCode::kQualityRejected;
  error.subcode = static_cast<std::uint8_t>(QualityReason::kSaturated);
  error.detail = "channel 0: saturated/implausible samples";
  // One failure bitmask per channel: bit (1 << reason).
  error.channel_reasons = {
      static_cast<std::uint8_t>(
          1u << static_cast<std::uint8_t>(QualityReason::kSaturated)),
      0,
      static_cast<std::uint8_t>(
          (1u << static_cast<std::uint8_t>(QualityReason::kNoiseFloor)) |
          (1u << static_cast<std::uint8_t>(QualityReason::kDrift)))};
  const auto restored = ErrorPayload::deserialize(error.serialize());
  EXPECT_EQ(restored.channel_reasons, error.channel_reasons);
}

TEST(Messages, QualityReasonSeverityOrdering) {
  // Lower nonzero wire value = more severe; kNone never wins.
  EXPECT_TRUE(
      more_severe(QualityReason::kSaturated, QualityReason::kDrift));
  EXPECT_TRUE(
      more_severe(QualityReason::kNoiseFloor, QualityReason::kNone));
  EXPECT_FALSE(
      more_severe(QualityReason::kNone, QualityReason::kDrift));
  EXPECT_FALSE(
      more_severe(QualityReason::kDrift, QualityReason::kSaturated));
  EXPECT_STREQ(to_string(QualityReason::kDropout), "dropout");
}

TEST(Messages, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kBadMac), "bad MAC");
  EXPECT_STREQ(to_string(ErrorCode::kQualityRejected), "quality rejected");
  EXPECT_STREQ(to_string(ErrorCode::kUnknownDevice), "unknown device");
  EXPECT_STREQ(to_string(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(ErrorCode::kMalformed), "malformed request");
  EXPECT_STREQ(to_string(ErrorCode::kSessionConflict), "session conflict");
  EXPECT_STREQ(to_string(ErrorCode::kStaleCounter), "stale counter");
  EXPECT_STREQ(to_string(ErrorCode::kAuthRequired), "authentication required");
  EXPECT_STREQ(to_string(ErrorCode::kRevoked), "device revoked");
  EXPECT_STREQ(to_string(ErrorCode::kBadEpoch), "bad key epoch");
}

TEST(Messages, AuthChallengePayloadRoundTrip) {
  AuthChallengePayload payload;
  payload.key_epoch = 3;
  for (std::size_t i = 0; i < payload.challenge.size(); ++i)
    payload.challenge[i] = static_cast<std::uint8_t>(i * 7);
  const auto restored =
      AuthChallengePayload::deserialize(payload.serialize());
  EXPECT_EQ(restored.key_epoch, 3u);
  EXPECT_EQ(restored.challenge, payload.challenge);
}

TEST(Messages, AuthResponsePayloadRoundTrip) {
  AuthResponsePayload payload;
  for (std::size_t i = 0; i < payload.challenge.size(); ++i) {
    payload.challenge[i] = static_cast<std::uint8_t>(i + 1);
    payload.proof[i] = static_cast<std::uint8_t>(0xF0 - i);
  }
  const auto restored =
      AuthResponsePayload::deserialize(payload.serialize());
  EXPECT_EQ(restored.challenge, payload.challenge);
  EXPECT_EQ(restored.proof, payload.proof);
}

TEST(Messages, SeriesRoundTrip) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5e5, 2e6};
  series.channels.emplace_back(450.0, std::vector<double>{1.0, 0.99, 1.01},
                               2.5);
  series.channels.emplace_back(450.0, std::vector<double>{1.0, 0.98, 1.02},
                               2.5);
  const auto restored = deserialize_series(serialize_series(series));
  ASSERT_EQ(restored.channels.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.carrier_frequencies_hz[1], 2e6);
  EXPECT_DOUBLE_EQ(restored.channels[0].sample_rate(), 450.0);
  EXPECT_DOUBLE_EQ(restored.channels[0].start_time(), 2.5);
  EXPECT_DOUBLE_EQ(restored.channels[1][2], 1.02);
}

TEST(Messages, AuthDecisionRoundTrip) {
  AuthDecisionPayload payload;
  payload.authenticated = true;
  payload.user_id = "alice";
  payload.distance = 0.25;
  const auto restored =
      AuthDecisionPayload::deserialize(payload.serialize());
  EXPECT_TRUE(restored.authenticated);
  EXPECT_EQ(restored.user_id, "alice");
  EXPECT_DOUBLE_EQ(restored.distance, 0.25);
}

TEST(Messages, EnvelopeTrailingBytesRejected) {
  const auto envelope =
      make_envelope(MessageType::kSignalUpload, 7, 1, {1, 2, 3}, kKey);
  auto bytes = envelope.serialize();
  bytes.push_back(0xAB);  // garbage after the MAC
  EXPECT_THROW(Envelope::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(Envelope::deserialize(bytes));
}

TEST(Messages, TruncatedEnvelopeThrows) {
  const auto envelope =
      make_envelope(MessageType::kSignalUpload, 1, 1, {1, 2, 3}, kKey);
  const auto bytes = envelope.serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 10);
  EXPECT_THROW(Envelope::deserialize(cut), std::runtime_error);
}

// --- Malformed-input rejection ----------------------------------------
// Every payload decoder is strict: truncated input and trailing bytes
// both throw rather than yielding a partially-initialized message.

TEST(Messages, SignalUploadPayloadTrailingBytesRejected) {
  SignalUploadPayload payload;
  payload.data = {1, 2, 3};
  auto bytes = payload.serialize();
  bytes.push_back(0x00);
  EXPECT_THROW(SignalUploadPayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(SignalUploadPayload::deserialize(bytes));
}

TEST(Messages, SignalUploadPayloadTruncatedThrows) {
  SignalUploadPayload payload;
  payload.data = {1, 2, 3};
  const auto bytes = payload.serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::span<const std::uint8_t> cut(bytes.data(), n);
    EXPECT_THROW(SignalUploadPayload::deserialize(cut), std::out_of_range)
        << "prefix of " << n << " bytes";
  }
}

TEST(Messages, AuthPassPayloadTrailingBytesRejected) {
  AuthPassPayload pass;
  pass.upload.data = {4, 5, 6};
  pass.volume_ul = 0.75;
  auto bytes = pass.serialize();
  bytes.push_back(0xFF);
  EXPECT_THROW(AuthPassPayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(AuthPassPayload::deserialize(bytes));
}

TEST(Messages, AuthPassPayloadTruncatedThrows) {
  AuthPassPayload pass;
  pass.upload.data = {4, 5, 6};
  const auto bytes = pass.serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 1);
  EXPECT_THROW(AuthPassPayload::deserialize(cut), std::out_of_range);
}

TEST(Messages, AuthDecisionPayloadTrailingBytesRejected) {
  AuthDecisionPayload payload;
  payload.user_id = "alice";
  auto bytes = payload.serialize();
  bytes.push_back(0x01);
  EXPECT_THROW(AuthDecisionPayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(AuthDecisionPayload::deserialize(bytes));
}

TEST(Messages, ErrorPayloadTrailingBytesRejected) {
  ErrorPayload error;
  error.detail = "rejected";
  auto bytes = error.serialize();
  bytes.push_back(0x42);
  EXPECT_THROW(ErrorPayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(ErrorPayload::deserialize(bytes));
}

TEST(Messages, AuthChallengePayloadTrailingBytesRejected) {
  AuthChallengePayload payload;
  payload.key_epoch = 1;
  auto bytes = payload.serialize();
  bytes.push_back(0x99);
  EXPECT_THROW(AuthChallengePayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(AuthChallengePayload::deserialize(bytes));
}

TEST(Messages, AuthChallengePayloadTruncatedThrows) {
  AuthChallengePayload payload;
  const auto bytes = payload.serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::span<const std::uint8_t> cut(bytes.data(), n);
    EXPECT_ANY_THROW(AuthChallengePayload::deserialize(cut))
        << "prefix of " << n << " bytes";
  }
}

TEST(Messages, AuthResponsePayloadTrailingBytesRejected) {
  AuthResponsePayload payload;
  auto bytes = payload.serialize();
  bytes.push_back(0x77);
  EXPECT_THROW(AuthResponsePayload::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(AuthResponsePayload::deserialize(bytes));
}

TEST(Messages, AuthResponsePayloadTruncatedThrows) {
  AuthResponsePayload payload;
  const auto bytes = payload.serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::span<const std::uint8_t> cut(bytes.data(), n);
    EXPECT_ANY_THROW(AuthResponsePayload::deserialize(cut))
        << "prefix of " << n << " bytes";
  }
}

TEST(Messages, SeriesTrailingBytesRejected) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5e5};
  series.channels.emplace_back(450.0, std::vector<double>{1.0, 2.0}, 0.0);
  auto bytes = serialize_series(series);
  bytes.push_back(0x00);
  EXPECT_THROW(deserialize_series(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(deserialize_series(bytes));
}

TEST(Messages, SeriesHostileChannelCountRejectedBeforeAllocation) {
  // A 4-byte body declaring 2^32-1 channels must be rejected up front
  // (count_u32), not trusted as a reserve() size.
  const std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(deserialize_series(bytes), std::out_of_range);
}

TEST(Messages, SeriesHostileSampleCountRejectedBeforeAllocation) {
  util::ByteWriter w;
  w.u32(1);       // one channel
  w.f64(5e5);     // carrier
  w.f64(450.0);   // rate
  w.f64(0.0);     // start
  w.u32(0xFFFFFFFF);  // 2^32-1 samples, no bytes behind it
  EXPECT_THROW(deserialize_series(w.data()), std::out_of_range);
}

TEST(Messages, BitFlippedUploadStillDecodesOrThrows) {
  // Bit flips inside the envelope body are caught by the MAC; flips
  // inside a payload must never crash the decoder — they either decode
  // to different field values or throw one of the two structured types.
  SignalUploadPayload payload;
  payload.compressed = true;
  payload.sample_rate_hz = 450.0;
  payload.data = {10, 20, 30, 40};
  const auto bytes = payload.serialize();
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupted = bytes;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      (void)SignalUploadPayload::deserialize(corrupted);
    } catch (const std::out_of_range&) {
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace medsen::net
