#include "net/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace medsen::net {
namespace {

TEST(MessageQueue, SendReceiveInOrder) {
  MessageQueue queue;
  queue.send({1});
  queue.send({2});
  EXPECT_EQ(queue.receive().value(), (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(queue.receive().value(), (std::vector<std::uint8_t>{2}));
}

TEST(MessageQueue, TryReceiveEmptyIsNullopt) {
  MessageQueue queue;
  EXPECT_FALSE(queue.try_receive().has_value());
  queue.send({7});
  EXPECT_TRUE(queue.try_receive().has_value());
  EXPECT_FALSE(queue.try_receive().has_value());
}

TEST(MessageQueue, ReceiveBlocksUntilSend) {
  MessageQueue queue;
  std::optional<std::vector<std::uint8_t>> received;
  std::thread consumer([&] { received = queue.receive(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.send({42});
  consumer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->front(), 42);
}

TEST(MessageQueue, ShutdownWakesReceiver) {
  MessageQueue queue;
  std::optional<std::vector<std::uint8_t>> received{std::vector<std::uint8_t>{1}};
  std::thread consumer([&] { received = queue.receive(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.shutdown();
  consumer.join();
  EXPECT_FALSE(received.has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(MessageQueue, DrainsBeforeShutdownReturnsNull) {
  MessageQueue queue;
  queue.send({1});
  queue.shutdown();
  EXPECT_TRUE(queue.receive().has_value());
  EXPECT_FALSE(queue.receive().has_value());
}

TEST(MessageQueue, SendAfterShutdownDropped) {
  MessageQueue queue;
  queue.shutdown();
  queue.send({1});
  EXPECT_FALSE(queue.try_receive().has_value());
}

TEST(MessageQueue, ManyProducersOneConsumer) {
  MessageQueue queue;
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        queue.send({static_cast<std::uint8_t>(p)});
    });
  }
  int received = 0;
  while (received < kPerProducer * kProducers) {
    if (queue.receive().has_value()) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, kPerProducer * kProducers);
}

TEST(DuplexChannel, IndependentDirections) {
  DuplexChannel duplex;
  duplex.a_to_b.send({1});
  duplex.b_to_a.send({2});
  EXPECT_EQ(duplex.a_to_b.receive()->front(), 1);
  EXPECT_EQ(duplex.b_to_a.receive()->front(), 2);
}

}  // namespace
}  // namespace medsen::net
