#include "util/secure_zero.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <new>
#include <numeric>
#include <vector>

#include "util/secret_bytes.h"

namespace medsen::util {
namespace {

TEST(SecureZero, ZeroesExactlyTheRequestedRange) {
  std::array<std::uint8_t, 32> buf{};
  buf.fill(0xAB);
  secure_zero(buf.data() + 8, 16);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 0xAB) << i;
  for (std::size_t i = 8; i < 24; ++i) EXPECT_EQ(buf[i], 0x00) << i;
  for (std::size_t i = 24; i < 32; ++i) EXPECT_EQ(buf[i], 0xAB) << i;
}

TEST(SecureZero, NullAndZeroLengthAreNoOps) {
  secure_zero(nullptr, 0);
  secure_zero(nullptr, 16);  // must not crash
  std::uint8_t byte = 0x5A;
  secure_zero(&byte, 0);
  EXPECT_EQ(byte, 0x5A);
}

TEST(SecureWipe, VectorIsZeroedThenCleared) {
  std::vector<std::uint8_t> v(40, 0xCD);
  const std::uint8_t* backing = v.data();
  const std::size_t n = v.size();
  secure_wipe(v);
  EXPECT_TRUE(v.empty());
  // clear() keeps the allocation, so the backing store is still ours to
  // inspect: every byte the key occupied must be zero.
  ASSERT_GE(v.capacity(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(backing[i], 0x00) << i;
}

TEST(SecureWipe, ArrayIsZeroedInPlace) {
  std::array<std::uint8_t, 16> key{};
  std::iota(key.begin(), key.end(), std::uint8_t{1});
  secure_wipe(key);
  for (const auto b : key) EXPECT_EQ(b, 0x00);
}

// --- SecretBytes -----------------------------------------------------

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(0x40 + (i % 64));
  return v;
}

bool window_contains(std::span<const unsigned char> haystack,
                     std::span<const std::uint8_t> needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

TEST(SecretBytes, HoldsAndReturnsBytes) {
  const auto key = pattern(32);
  const SecretBytes secret(key);
  ASSERT_EQ(secret.size(), 32u);
  EXPECT_TRUE(std::equal(key.begin(), key.end(), secret.data()));
  EXPECT_TRUE(secret == key);
}

TEST(SecretBytes, AdoptWipesTheSourceVector) {
  auto key = pattern(24);
  const auto expected = key;
  const std::uint8_t* source_backing = key.data();
  SecretBytes secret;
  secret.adopt(std::move(key));
  EXPECT_TRUE(secret == expected);
  // The donor vector's buffer must hold no residue of the key.
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(source_backing[i], 0x00) << i;
}

// The flagship pin: destroy a SecretBytes in raw storage we own, then
// inspect that storage byte-for-byte. Keys fit the inline array, so the
// whole object representation is visible after the destructor runs —
// no use-after-free, ASan-clean, and any future "forgot to wipe"
// regression turns the key bytes back up in the window.
TEST(SecretBytes, DestructorZeroizesInlineKeyStorage) {
  alignas(SecretBytes) unsigned char storage[sizeof(SecretBytes)];
  const auto key = pattern(32);

  auto* secret = new (storage) SecretBytes(key);
  ASSERT_TRUE(window_contains({storage, sizeof(storage)}, key))
      << "test invariant: the live key must be visible in the object";
  secret->~SecretBytes();

  EXPECT_FALSE(window_contains({storage, sizeof(storage)}, key))
      << "destructed SecretBytes left key bytes behind";
}

TEST(SecretBytes, MovedFromObjectIsWipedAndEmpty) {
  alignas(SecretBytes) unsigned char storage[sizeof(SecretBytes)];
  const auto key = pattern(48);

  auto* source = new (storage) SecretBytes(key);
  SecretBytes dest(std::move(*source));
  EXPECT_TRUE(dest == key);
  EXPECT_TRUE(source->empty());
  // The moved-from object is still alive; its storage must already be
  // clean — an ownership transfer may not leave a second live copy.
  EXPECT_FALSE(window_contains({storage, sizeof(storage)}, key))
      << "moved-from SecretBytes still holds key bytes";
  source->~SecretBytes();
}

TEST(SecretBytes, MoveAssignWipesBothOldContentsAndSource) {
  alignas(SecretBytes) unsigned char storage[sizeof(SecretBytes)];
  const auto old_key = pattern(16);
  const auto new_key = pattern(32);

  auto* source = new (storage) SecretBytes(new_key);
  SecretBytes dest(old_key);
  dest = std::move(*source);
  EXPECT_TRUE(dest == new_key);
  EXPECT_FALSE(window_contains({storage, sizeof(storage)}, new_key));
  source->~SecretBytes();
}

TEST(SecretBytes, WipeIsIdempotentAndReusable) {
  SecretBytes secret(pattern(16));
  secret.wipe();
  EXPECT_TRUE(secret.empty());
  secret.wipe();
  secret.assign(pattern(8));
  EXPECT_EQ(secret.size(), 8u);
}

TEST(SecretBytes, SpillPathHoldsOversizedKeys) {
  // Legacy free-form provisioning keys may exceed the inline capacity.
  const auto big = pattern(200);
  SecretBytes secret(big);
  ASSERT_EQ(secret.size(), 200u);
  EXPECT_TRUE(std::equal(big.begin(), big.end(), secret.data()));
  SecretBytes moved(std::move(secret));
  EXPECT_TRUE(moved == big);
  EXPECT_TRUE(secret.empty());  // NOLINT(bugprone-use-after-move): pinned
  secret.assign(pattern(4));    // reusable after a move-out
  EXPECT_EQ(secret.size(), 4u);
}

TEST(SecretBytes, SelfAssignAndAliasedAssignAreSafe) {
  const auto key = pattern(32);
  SecretBytes secret(key);
  secret.assign(secret.span());  // aliasing assign must not corrupt
  EXPECT_TRUE(secret == key);
}

TEST(SecretBytes, ConstantTimeEqualitySemantics) {
  const SecretBytes a(pattern(16));
  const SecretBytes b(pattern(16));
  SecretBytes c(pattern(16));
  EXPECT_TRUE(a == b);
  std::vector<std::uint8_t> tweaked = pattern(16);
  tweaked[7] ^= 0x01;
  c.assign(tweaked);
  EXPECT_FALSE(a == c);
  const SecretBytes shorter(pattern(8));
  EXPECT_FALSE(a == shorter);
  EXPECT_TRUE(SecretBytes() == SecretBytes());
}

}  // namespace
}  // namespace medsen::util
