#include "util/scratch_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace medsen::util {
namespace {

struct Buffers {
  std::vector<double> data;
};

TEST(ScratchPool, AcquireConstructsOnDemand) {
  ScratchPool<Buffers> pool;
  EXPECT_EQ(pool.created(), 0u);
  EXPECT_EQ(pool.available(), 0u);
  {
    auto lease = pool.acquire();
    EXPECT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ScratchPool, SequentialLeasesReuseOneObject) {
  ScratchPool<Buffers> pool;
  for (int i = 0; i < 10; ++i) {
    auto lease = pool.acquire();
    lease->data.resize(1000);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ScratchPool, ReturnedObjectKeepsItsCapacity) {
  // The whole point: buffers warm up to the workload's high-water mark
  // and stay there.
  ScratchPool<Buffers> pool;
  {
    auto lease = pool.acquire();
    lease->data.assign(4096, 1.0);
  }
  auto lease = pool.acquire();
  EXPECT_GE(lease->data.capacity(), 4096u);
}

TEST(ScratchPool, ConcurrentLeasesGetDistinctObjects) {
  ScratchPool<Buffers> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ(pool.created(), 2u);
}

TEST(ScratchPool, MovedFromLeaseIsEmptyAndDoesNotDoubleReturn) {
  ScratchPool<Buffers> pool;
  auto a = pool.acquire();
  auto b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  {
    const auto c = std::move(b);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ScratchPool, MoveAssignReturnsPreviousObject) {
  ScratchPool<Buffers> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_EQ(pool.available(), 0u);
  a = std::move(b);  // a's original object goes back to the pool
  EXPECT_EQ(pool.available(), 1u);
}

TEST(ScratchPool, ConcurrentAcquireReleaseIsSafe) {
  // Hammer the freelist from several threads; the pool must never hand
  // the same object to two live leases (each thread writes a distinct
  // tag and verifies it before release).
  ScratchPool<Buffers> pool;
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto lease = pool.acquire();
        lease->data.assign(8, static_cast<double>(t));
        for (double v : lease->data)
          ASSERT_EQ(v, static_cast<double>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(pool.available(), pool.created());
}

}  // namespace
}  // namespace medsen::util
