// Durable file helpers: atomic replace semantics, errno propagation,
// DurableFile append/truncate, and the crash-site contract the chaos
// harness sweeps — a simulated crash at any point inside
// write_file_atomic must leave either the complete old file or the
// complete new file, never a torn target.

#include "util/fileio.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "util/crash_point.h"

namespace medsen::util {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/medsen_fileio_" + name;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(FileIo, WriteReadRoundTrip) {
  const auto path = temp_path("roundtrip.bin");
  const auto data = bytes({1, 2, 3, 0xFF, 0});
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  EXPECT_TRUE(file_exists(path));
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
}

TEST(FileIo, AtomicWriteReplacesAndLeavesNoTmp) {
  const auto path = temp_path("atomic.bin");
  write_file_atomic(path, bytes({1, 2, 3}));
  write_file_atomic(path, bytes({9, 8}));
  EXPECT_EQ(read_file(path), bytes({9, 8}));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FileIo, ErrorsCarryErrno) {
  // A missing parent directory must surface as std::system_error with a
  // real errno, not silently succeed or abort.
  const auto path = temp_path("no_such_dir") + "/x/y.bin";
  try {
    write_file_atomic(path, bytes({1}));
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_NE(e.code().value(), 0);
  }
  EXPECT_THROW((void)read_file(temp_path("does_not_exist.bin")),
               std::system_error);
}

TEST(FileIo, AtomicWriteCrashSitesNeverTearTheTarget) {
  const auto path = temp_path("atomic_crash.bin");
  const auto old_content = bytes({0xAA, 0xBB, 0xCC});
  const auto new_content = bytes({0x11, 0x22, 0x33, 0x44});
  const char* sites[] = {
      "fileio.atomic.tmp_open",   "fileio.atomic.tmp_partial",
      "fileio.atomic.tmp_written", "fileio.atomic.tmp_synced",
      "fileio.atomic.renamed",
  };
  for (const char* site : sites) {
    write_file_atomic(path, old_content);
    {
      ScopedCrashArm armed(site);
      EXPECT_THROW(write_file_atomic(path, new_content), SimulatedCrash)
          << site;
    }
    // The target is either fully old or fully new — the rename boundary
    // decides which, and nothing in between is observable.
    const auto after = read_file(path);
    EXPECT_TRUE(after == old_content || after == new_content)
        << "torn target after crash at " << site;
    // And a retry (the recovery path) always converges on the new file.
    write_file_atomic(path, new_content);
    EXPECT_EQ(read_file(path), new_content);
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FileIo, FileExistsIsStatBasedNotReadability) {
  // file_exists must answer "is there something at this path", not "can
  // I read it": a journal that exists but is unreadable (permissions)
  // must never be mistaken for absent and reinitialized — that would
  // truncate acknowledged state. A write-only file is the probe; under
  // an access(R_OK) implementation it reports absent for non-root
  // callers.
  const auto path = temp_path("writeonly.bin");
  write_file(path, bytes({1, 2}));
  ASSERT_EQ(::chmod(path.c_str(), 0200), 0);
  EXPECT_TRUE(file_exists(path));
  ASSERT_EQ(::chmod(path.c_str(), 0644), 0);
  std::remove(path.c_str());
  // Directories stat too: any entry at the path counts.
  const auto dir = temp_path("exists_dir");
  ensure_directory(dir);
  EXPECT_TRUE(file_exists(dir));
}

TEST(FileIo, RemoveFileReportsAndThrows) {
  const auto path = temp_path("removable.bin");
  write_file(path, bytes({1}));
  EXPECT_TRUE(remove_file(path));
  EXPECT_FALSE(file_exists(path));
  // Removing a missing file is a clean false, not an error.
  EXPECT_FALSE(remove_file(path));
  // A real failure (path component is not a directory) throws with the
  // errno attached.
  write_file(path, bytes({1}));
  EXPECT_THROW((void)remove_file(path + "/not_a_dir"), std::system_error);
  std::remove(path.c_str());
}

TEST(FileIo, EnsureDirectoryIsIdempotent) {
  const auto dir = temp_path("made_dir");
  ensure_directory(dir);
  ensure_directory(dir);
  write_file(dir + "/f.bin", bytes({1}));
  EXPECT_TRUE(file_exists(dir + "/f.bin"));
  std::remove((dir + "/f.bin").c_str());
}

TEST(DurableFile, AppendSyncTruncate) {
  const auto path = temp_path("durable.bin");
  std::remove(path.c_str());
  {
    auto file = DurableFile::open_append(path);
    EXPECT_TRUE(file.is_open());
    file.append(bytes({1, 2, 3}));
    file.append(bytes({4, 5}));
    file.sync();
    EXPECT_EQ(file.size(), 5u);
    file.truncate(3);
    EXPECT_EQ(file.size(), 3u);
  }
  EXPECT_EQ(read_file(path), bytes({1, 2, 3}));

  // Reopening appends after the existing content.
  {
    auto file = DurableFile::open_append(path);
    file.append(bytes({9}));
    file.sync();
  }
  EXPECT_EQ(read_file(path), bytes({1, 2, 3, 9}));
  std::remove(path.c_str());
}

TEST(DurableFile, MoveTransfersOwnership) {
  const auto path = temp_path("durable_move.bin");
  std::remove(path.c_str());
  auto a = DurableFile::open_append(path);
  a.append(bytes({7}));
  DurableFile b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): moved-from
  EXPECT_TRUE(b.is_open());
  b.append(bytes({8}));
  b.sync();
  EXPECT_EQ(read_file(path), bytes({7, 8}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace medsen::util
