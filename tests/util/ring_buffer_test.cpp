#include "util/ring_buffer.h"

#include <gtest/gtest.h>

namespace medsen::util {
namespace {

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 3; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  EXPECT_FALSE(rb.push(1));
  EXPECT_FALSE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_TRUE(rb.push(4));  // evicts 1
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, AtIndexesFromOldest) {
  RingBuffer<int> rb(3);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  rb.push(40);
  EXPECT_EQ(rb.at(0), 20);
  EXPECT_EQ(rb.at(2), 40);
  EXPECT_THROW((void)rb.at(3), std::out_of_range);
}

TEST(RingBuffer, PopEmptyThrows) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, WrapAroundManyTimes) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 1000; ++i) rb.push(i);
  EXPECT_EQ(rb.front(), 995);
  EXPECT_EQ(rb.back(), 999);
}

}  // namespace
}  // namespace medsen::util
