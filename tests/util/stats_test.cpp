#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace medsen::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceIsUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance 4; sample variance = 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 5.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 5.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitDegenerateX) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, HistogramClampsOutliers) {
  const std::vector<double> xs = {-5.0, 0.5, 1.5, 99.0};
  const auto h = histogram(xs, 0.0, 2.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -5 clamped into first bucket + 0.5
  EXPECT_EQ(h[1], 2u);  // 1.5 + 99 clamped
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

}  // namespace
}  // namespace medsen::util
