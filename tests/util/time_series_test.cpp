#include "util/time_series.h"

#include <gtest/gtest.h>

namespace medsen::util {
namespace {

TEST(TimeSeries, RejectsNonPositiveRate) {
  EXPECT_THROW(TimeSeries(0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-450.0), std::invalid_argument);
}

TEST(TimeSeries, TimeAtFollowsRateAndStart) {
  TimeSeries ts(450.0, 10.0);
  ts.push_back(1.0);
  ts.push_back(2.0);
  EXPECT_DOUBLE_EQ(ts.time_at(0), 10.0);
  EXPECT_NEAR(ts.time_at(1), 10.0 + 1.0 / 450.0, 1e-12);
}

TEST(TimeSeries, IndexAtRoundsAndClamps) {
  TimeSeries ts(100.0);
  for (int i = 0; i < 10; ++i) ts.push_back(i);
  EXPECT_EQ(ts.index_at(0.042), 4u);
  EXPECT_EQ(ts.index_at(-5.0), 0u);
  EXPECT_EQ(ts.index_at(5.0), 9u);
}

TEST(TimeSeries, DurationMatchesSampleCount) {
  TimeSeries ts(450.0);
  for (int i = 0; i < 450; ++i) ts.push_back(0.0);
  EXPECT_NEAR(ts.duration(), 1.0, 1e-12);
}

TEST(TimeSeries, SliceExtractsWindow) {
  TimeSeries ts(10.0);
  for (int i = 0; i < 100; ++i) ts.push_back(i);
  const TimeSeries cut = ts.slice(2.0, 3.0);
  ASSERT_GE(cut.size(), 10u);
  EXPECT_DOUBLE_EQ(cut[0], 20.0);
  EXPECT_NEAR(cut.start_time(), 2.0, 1e-9);
}

TEST(TimeSeries, SliceOfEmptyRangeIsEmpty) {
  TimeSeries ts(10.0);
  for (int i = 0; i < 10; ++i) ts.push_back(i);
  EXPECT_TRUE(ts.slice(5.0, 5.0).empty());
  EXPECT_TRUE(ts.slice(3.0, 1.0).empty());
}

TEST(MultiChannelSeries, TotalSamplesSumsChannels) {
  MultiChannelSeries mcs;
  mcs.carrier_frequencies_hz = {5e5, 1e6};
  mcs.channels.emplace_back(450.0, std::vector<double>(100, 0.0));
  mcs.channels.emplace_back(450.0, std::vector<double>(50, 0.0));
  EXPECT_EQ(mcs.channel_count(), 2u);
  EXPECT_EQ(mcs.total_samples(), 150u);
}

}  // namespace
}  // namespace medsen::util
