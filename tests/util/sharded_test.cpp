#include "util/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace medsen::util {
namespace {

TEST(Fnv1a, MatchesReferenceVectors) {
  // The canonical FNV-1a test vectors (string form).
  EXPECT_EQ(fnv1a64(std::string_view("")), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ull);
}

TEST(Fnv1a, IntegerFormHashesLittleEndianBytes) {
  // fnv1a64(uint64) is defined as FNV-1a over the 8 LE bytes, so it must
  // agree with the string form over those bytes.
  const std::uint64_t key = 0x0123456789ABCDEFull;
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((key >> (8 * i)) & 0xFF);
  EXPECT_EQ(fnv1a64(key), fnv1a64(std::string_view(bytes, 8)));
  // Pinned value: routing is part of the deployment contract.
  EXPECT_EQ(fnv1a64(std::uint64_t{0}), fnv1a64(std::string_view("\0\0\0\0\0\0\0\0", 8)));
}

TEST(RoundUpPow2, RoundsUp) {
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(8), 8u);
  EXPECT_EQ(round_up_pow2(9), 16u);
  EXPECT_EQ(round_up_pow2(250), 256u);
}

TEST(DefaultShardCount, PowerOfTwoAndBounded) {
  const std::size_t shards = default_shard_count();
  EXPECT_GE(shards, 4u);
  EXPECT_LE(shards, 256u);
  EXPECT_EQ(shards & (shards - 1), 0u);
}

TEST(Sharded, RoundsRequestedCountToPowerOfTwo) {
  EXPECT_EQ(Sharded<int>(1).shard_count(), 1u);
  EXPECT_EQ(Sharded<int>(5).shard_count(), 8u);
  EXPECT_EQ(Sharded<int>(64).shard_count(), 64u);
}

TEST(Sharded, RoutingIsDeterministicAcrossInstances) {
  const Sharded<int> a(16);
  const Sharded<int> b(16);
  for (std::uint64_t key = 0; key < 1000; ++key)
    EXPECT_EQ(a.shard_index(key), b.shard_index(key)) << key;
}

TEST(Sharded, RoutingCoversAllShards) {
  const Sharded<int> sharded(8);
  std::set<std::size_t> seen;
  for (std::uint64_t key = 0; key < 1000; ++key)
    seen.insert(sharded.shard_index(key));
  EXPECT_EQ(seen.size(), sharded.shard_count());
}

TEST(Sharded, WithMutatesOnlyTheRoutedShard) {
  Sharded<int> sharded(4);
  sharded.with(7, [](int& state) { state = 42; });
  int sum = 0;
  int nonzero = 0;
  sharded.for_each_shard([&](const int& state) {
    sum += state;
    if (state != 0) ++nonzero;
  });
  EXPECT_EQ(sum, 42);
  EXPECT_EQ(nonzero, 1);
}

TEST(Sharded, WithReturnsTheCallbackValue) {
  Sharded<std::vector<int>> sharded(2);
  sharded.with(1, [](std::vector<int>& v) { v.push_back(5); });
  const std::size_t size =
      sharded.with(1, [](std::vector<int>& v) { return v.size(); });
  EXPECT_EQ(size, 1u);
}

TEST(Sharded, SingleShardStillRoutesEverythingToIt) {
  Sharded<int> sharded(1);
  for (std::uint64_t key = 0; key < 100; ++key)
    EXPECT_EQ(sharded.shard_index(key), 0u);
}

TEST(Sharded, ConcurrentIncrementsAreNotLost) {
  Sharded<std::uint64_t> sharded(8);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        sharded.with(static_cast<std::uint64_t>(t) * kPerThread + i,
                     [](std::uint64_t& count) { ++count; });
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total = 0;
  sharded.for_each_shard([&](const std::uint64_t& count) { total += count; });
  EXPECT_EQ(total, kThreads * kPerThread);
}

}  // namespace
}  // namespace medsen::util
