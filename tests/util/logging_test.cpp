#include "util/logging.h"

#include <gtest/gtest.h>

namespace medsen::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotCrash) {
  set_log_level(LogLevel::kError);
  log_message(LogLevel::kDebug, "test", "below threshold");
  log_message(LogLevel::kInfo, "test", "also below");
}

TEST_F(LoggingTest, StreamStyleBuilds) {
  set_log_level(LogLevel::kError);  // keep test output quiet
  LogLine(LogLevel::kInfo, "component") << "value=" << 42 << " ok";
}

TEST_F(LoggingTest, EmittedMessageDoesNotCrash) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::kWarn, "unit", "visible");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARN"), std::string::npos);
  EXPECT_NE(err.find("unit"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
}

}  // namespace
}  // namespace medsen::util
