#include "util/csv.h"

#include <gtest/gtest.h>

namespace medsen::util {
namespace {

MultiChannelSeries make_series() {
  MultiChannelSeries mcs;
  mcs.carrier_frequencies_hz = {5e5, 2e6};
  mcs.channels.emplace_back(450.0, std::vector<double>{1.0, 0.998, 1.001});
  mcs.channels.emplace_back(450.0, std::vector<double>{1.0, 0.997, 1.002});
  return mcs;
}

TEST(Csv, HeaderNamesCarriers) {
  const std::string text = to_csv(make_series());
  EXPECT_EQ(text.substr(0, text.find('\n')), "time,ch500000,ch2000000");
}

TEST(Csv, RoundTripPreservesData) {
  const auto original = make_series();
  const auto parsed = from_csv(to_csv(original), 450.0);
  ASSERT_EQ(parsed.channels.size(), 2u);
  ASSERT_EQ(parsed.channels[0].size(), 3u);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_NEAR(parsed.channels[c][i], original.channels[c][i], 1e-9);
  EXPECT_NEAR(parsed.carrier_frequencies_hz[1], 2e6, 1.0);
}

TEST(Csv, EmptyInputThrows) {
  EXPECT_THROW(from_csv("", 450.0), std::runtime_error);
}

TEST(Csv, BadHeaderThrows) {
  EXPECT_THROW(from_csv("time,bogus\n0,1\n", 450.0), std::runtime_error);
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(from_csv("time,ch500000\n0,1,2\n", 450.0),
               std::runtime_error);
}

TEST(Csv, TableRendering) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{1.0, 2.0}, {3.0, 4.5}};
  EXPECT_EQ(table_to_csv(table), "x,y\n1,2\n3,4.5\n");
}

TEST(Csv, RowSizeScalesWithSamples) {
  // The compression benchmark relies on CSV size growing linearly.
  auto mcs = make_series();
  const auto small = to_csv(mcs).size();
  for (int i = 0; i < 100; ++i) {
    mcs.channels[0].push_back(1.0);
    mcs.channels[1].push_back(1.0);
  }
  EXPECT_GT(to_csv(mcs).size(), small + 100 * 3);
}

}  // namespace
}  // namespace medsen::util
