#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace medsen::util {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x44);
  EXPECT_EQ(w.data()[3], 0x11);
}

TEST(Serialize, BlobAndStringRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 0, 255};
  w.blob(blob);
  w.str("medsen");
  ByteReader r(w.data());
  EXPECT_EQ(r.blob(), blob);
  EXPECT_EQ(r.str(), "medsen");
}

TEST(Serialize, F64VectorRoundTrip) {
  ByteWriter w;
  const std::vector<double> xs = {0.0, -1.5, 1e300, 1e-300};
  w.f64_vec(xs);
  ByteReader r(w.data());
  EXPECT_EQ(r.f64_vec(), xs);
}

TEST(Serialize, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), std::out_of_range);
}

TEST(Serialize, TruncatedBlobThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.blob(), std::out_of_range);
}

TEST(Serialize, SpecialDoublesSurvive) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  ByteReader r(w.data());
  EXPECT_TRUE(std::isinf(r.f64()));
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
}

TEST(ByteReader, CountU32RejectsImpossibleCounts) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 elements, but nothing follows
  ByteReader r(w.data());
  EXPECT_THROW(r.count_u32(8), std::out_of_range);
}

TEST(ByteReader, CountU32AcceptsSatisfiableCounts) {
  ByteWriter w;
  w.u32(3);
  w.u8(1);
  w.u8(2);
  w.u8(3);
  ByteReader r(w.data());
  EXPECT_EQ(r.count_u32(1), 3u);
}

TEST(ByteReader, CountU32HandlesMaxCountWithoutOverflow) {
  // 2^32-1 elements x 8 bytes must not wrap around in 64-bit math.
  ByteWriter w;
  w.u32(0xFFFFFFFF);
  ByteReader r(w.data());
  EXPECT_THROW(r.count_u32(8), std::out_of_range);
}

TEST(ByteReader, ExpectDoneThrowsOnLeftovers) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.expect_done("unit"), std::runtime_error);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_done("unit"));
}

}  // namespace
}  // namespace medsen::util
