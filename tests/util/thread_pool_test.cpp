#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace medsen::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RespectsGrain) {
  ThreadPool pool(2);
  std::mutex m;
  std::vector<std::size_t> sizes;
  pool.parallel_for(100, 32, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    sizes.push_back(e - b);
  });
  std::size_t total = 0;
  for (const std::size_t s : sizes) {
    EXPECT_GE(s, 1u);
    total += s;
  }
  EXPECT_EQ(total, 100u);
  // All chunks but the ragged last one must honor the grain.
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    EXPECT_GE(sizes[i], 32u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b >= 32) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   16, 1,
                   [](std::size_t, std::size_t) {
                     throw std::runtime_error("first batch fails");
                   }),
               std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(16, 1, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(ThreadPool, ReuseAcrossManyBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, 1, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(50, 1, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8u * 50u);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(257, 1, [&](std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 257u);
  EXPECT_EQ(pool.concurrency(), 2u);
}

}  // namespace
}  // namespace medsen::util
