// util::CrashPoints: the deterministic crash-injection registry the
// restart-chaos harness drives. These tests pin the contract the harness
// depends on: disarmed sites are free and silent, an armed site throws
// on exactly its nth hit, tracking discovers sites without crashing, and
// SimulatedCrash sails through catch(std::exception) boundaries.

#include "util/crash_point.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace medsen::util {
namespace {

/// Every test starts and ends with a quiescent registry (it is
/// process-global state).
struct CrashPointTest : ::testing::Test {
  void SetUp() override { CrashPoints::instance().reset(); }
  void TearDown() override { CrashPoints::instance().reset(); }
};

TEST_F(CrashPointTest, DisarmedSitesDoNothing) {
  crash_point("test.site.a");
  crash_point("test.site.b");
  // Not tracking, not armed: hits are not even counted.
  EXPECT_EQ(CrashPoints::instance().hits("test.site.a"), 0u);
}

TEST_F(CrashPointTest, TrackingDiscoversSitesWithoutCrashing) {
  CrashPoints::instance().set_tracking(true);
  crash_point("test.site.a");
  crash_point("test.site.a");
  crash_point("test.site.b");
  const auto discovered = CrashPoints::instance().discovered();
  ASSERT_EQ(discovered.size(), 2u);
  EXPECT_EQ(discovered[0].first, "test.site.a");
  EXPECT_EQ(discovered[0].second, 2u);
  EXPECT_EQ(discovered[1].first, "test.site.b");
  EXPECT_EQ(discovered[1].second, 1u);
}

TEST_F(CrashPointTest, ArmedSiteThrowsOnExactlyNthHit) {
  CrashPoints::instance().arm("test.site.a", 3);
  crash_point("test.site.a");  // 1st
  crash_point("test.site.b");  // other sites unaffected
  crash_point("test.site.a");  // 2nd
  EXPECT_THROW(crash_point("test.site.a"), SimulatedCrash);
  // The count keeps advancing past the armed nth, so recovery can
  // re-run the same code path without re-firing.
  crash_point("test.site.a");
}

TEST_F(CrashPointTest, SimulatedCrashCarriesTheSiteName) {
  CrashPoints::instance().arm("test.site.a", 1);
  try {
    crash_point("test.site.a");
    FAIL() << "expected SimulatedCrash";
  } catch (const SimulatedCrash& crash) {
    EXPECT_EQ(crash.site, "test.site.a");
  }
}

TEST_F(CrashPointTest, SimulatedCrashIsNotAStdException) {
  // The service boundary converts std::exception into kError envelopes;
  // a simulated crash must NOT be absorbed there — it has to unwind all
  // the way out to the harness, like a real kill -9 would.
  CrashPoints::instance().arm("test.site.a", 1);
  bool reached_harness = false;
  try {
    try {
      crash_point("test.site.a");
    } catch (const std::exception&) {
      FAIL() << "SimulatedCrash was caught as std::exception";
    }
  } catch (const SimulatedCrash&) {
    reached_harness = true;
  }
  EXPECT_TRUE(reached_harness);
}

TEST_F(CrashPointTest, ScopedArmDisarmsOnExit) {
  {
    ScopedCrashArm armed("test.site.a", 1);
    EXPECT_THROW(crash_point("test.site.a"), SimulatedCrash);
  }
  crash_point("test.site.a");  // disarmed again
}

TEST_F(CrashPointTest, RandomArmIsDeterministicUnderASeed) {
  // Same seed => same crash schedule; the long-mode chaos run is
  // reproducible from its --seed alone.
  const auto schedule_for = [](std::uint64_t seed) {
    CrashPoints::instance().reset();
    CrashPoints::instance().arm_random(0.3, seed);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        crash_point("test.site.a");
        pattern += '.';
      } catch (const SimulatedCrash&) {
        pattern += 'X';
        // A fired crash disarms; re-arm to keep sampling the stream.
        CrashPoints::instance().arm_random(0.3, seed + i + 1);
      }
    }
    return pattern;
  };
  const auto a = schedule_for(42);
  const auto b = schedule_for(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('X'), std::string::npos) << "p=0.3 over 64 draws";
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(CrashPointTest, ResetClearsCountsAndArming) {
  CrashPoints::instance().set_tracking(true);
  crash_point("test.site.a");
  CrashPoints::instance().arm("test.site.b", 1);
  CrashPoints::instance().reset();
  EXPECT_TRUE(CrashPoints::instance().discovered().empty());
  crash_point("test.site.b");  // no throw
}

}  // namespace
}  // namespace medsen::util
