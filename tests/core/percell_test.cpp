#include "core/percell.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/analysis_service.h"
#include "core/decryptor.h"

namespace medsen::core {
namespace {

struct PerCellRig {
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acquisition;
  KeyParams params;

  PerCellRig() {
    channel.loss.enabled = false;
    acquisition.carriers_hz = {5.0e5};
    acquisition.noise_sigma = 5e-5;
    acquisition.drift.slow_amplitude = 0.002;
    acquisition.drift.random_walk_sigma = 1e-6;
    params.num_electrodes = 9;
    params.gain_min = 0.8;
    params.gain_max = 1.6;
  }
};

TEST(PerCell, OneKeyPerCellPlusInitial) {
  PerCellRig rig;
  crypto::ChaChaRng rng(1);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params, 30.0,
      rng, 11);
  EXPECT_EQ(result.schedule.keys().size(),
            result.acquisition.truth.total_particles() + 1);
}

TEST(PerCell, KeyTimesStrictlyIncreasing) {
  PerCellRig rig;
  crypto::ChaChaRng rng(2);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead358, 2000.0}};
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params, 10.0,
      rng, 12);
  const auto& keys = result.schedule.keys();
  for (std::size_t i = 1; i < keys.size(); ++i)
    EXPECT_GT(keys[i].t_start_s, keys[i - 1].t_start_s);
}

TEST(PerCell, FlowPinnedAcrossKeys) {
  PerCellRig rig;
  crypto::ChaChaRng rng(3);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params, 20.0,
      rng, 13);
  const auto first = result.schedule.keys().front().key.flow_code;
  for (const auto& tk : result.schedule.keys())
    EXPECT_EQ(tk.key.flow_code, first);
}

TEST(PerCell, DecryptsToGroundTruth) {
  PerCellRig rig;
  crypto::ChaChaRng rng(4);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 300.0}};
  const double duration = 60.0;
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params,
      duration, rng, 14);
  ASSERT_GT(result.acquisition.truth.total_particles(), 3u);

  cloud::AnalysisService service;
  const auto report = service.analyze(result.acquisition.signals);
  const auto decoded =
      decrypt_report(report, result.schedule, rig.design, duration);
  const double truth =
      static_cast<double>(result.acquisition.truth.total_particles());
  EXPECT_NEAR(decoded.estimated_count, truth,
              std::max(2.0, truth * 0.20));
}

TEST(PerCell, EmptySampleGivesSingleKey) {
  PerCellRig rig;
  crypto::ChaChaRng rng(5);
  sim::SampleSpec sample;  // nothing in it
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params, 5.0,
      rng, 15);
  EXPECT_EQ(result.schedule.keys().size(), 1u);
  EXPECT_EQ(result.acquisition.truth.total_particles(), 0u);
}

TEST(PerCell, KeyBitsLinearInCells) {
  KeyParams params;
  params.num_electrodes = 9;  // 9 + 36 + 4 = 49 bits/key
  EXPECT_EQ(per_cell_key_bits(params, 0), 49u);
  EXPECT_EQ(per_cell_key_bits(params, 100), 101u * 49u);
}

TEST(PerCell, ScheduleBitsMatchFormula) {
  PerCellRig rig;
  crypto::ChaChaRng rng(6);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto result = acquire_per_cell_keyed(
      sample, rig.channel, rig.design, rig.acquisition, rig.params, 20.0,
      rng, 16);
  EXPECT_EQ(result.schedule.size_bits(),
            per_cell_key_bits(rig.params,
                              result.acquisition.truth.total_particles()));
}

TEST(PerCell, KeyMuchLargerThanPeriodicScheme) {
  // The trade the paper describes: ideal secrecy costs a key linear in
  // the cell count, vs a handful of periodic keys.
  KeyParams params;
  params.num_electrodes = 9;
  params.period_s = 2.0;
  const std::uint64_t cells = 20000;
  crypto::ChaChaRng rng(7);
  const auto periodic = KeySchedule::generate(params, 60.0, rng);
  EXPECT_GT(per_cell_key_bits(params, cells), 100 * periodic.size_bits());
}

}  // namespace
}  // namespace medsen::core
