#include "core/diagnostic.h"

#include <gtest/gtest.h>

namespace medsen::core {
namespace {

TEST(Diagnostic, Cd4StagingBands) {
  const auto profile = DiagnosticProfile::cd4_staging();
  EXPECT_TRUE(profile.classify(100.0).alert);
  EXPECT_TRUE(profile.classify(350.0).alert);
  EXPECT_FALSE(profile.classify(800.0).alert);
}

TEST(Diagnostic, BandBoundariesInclusive) {
  const auto profile = DiagnosticProfile::cd4_staging();
  EXPECT_EQ(profile.classify(200.0).label,
            "immunosuppressed, monitor (200-500 cells/uL)");
  EXPECT_EQ(profile.classify(199.99).label,
            "severe immunosuppression (<200 cells/uL)");
  EXPECT_EQ(profile.classify(500.0).label, "normal (>=500 cells/uL)");
}

TEST(Diagnostic, DiagnoseComputesConcentration) {
  const auto profile = DiagnosticProfile::cd4_staging();
  const Diagnosis d = diagnose(profile, 150.0, 0.5);
  EXPECT_DOUBLE_EQ(d.concentration_per_ul, 300.0);
  EXPECT_TRUE(d.alert);
  EXPECT_DOUBLE_EQ(d.estimated_count, 150.0);
  EXPECT_DOUBLE_EQ(d.volume_ul, 0.5);
}

TEST(Diagnostic, ZeroVolumeYieldsZeroConcentration) {
  const auto profile = DiagnosticProfile::cd4_staging();
  const Diagnosis d = diagnose(profile, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(d.concentration_per_ul, 0.0);
}

TEST(Diagnostic, CustomProfileSortsBands) {
  const DiagnosticProfile profile(
      "test", {{100.0, "high", true}, {0.0, "low", false}});
  EXPECT_EQ(profile.bands().front().label, "low");
  EXPECT_EQ(profile.classify(50.0).label, "low");
  EXPECT_EQ(profile.classify(150.0).label, "high");
}

TEST(Diagnostic, EmptyProfileThrows) {
  EXPECT_THROW(DiagnosticProfile("bad", {}), std::invalid_argument);
}

TEST(Diagnostic, ProfileWithoutZeroBandThrows) {
  EXPECT_THROW(DiagnosticProfile("bad", {{10.0, "x", false}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace medsen::core
