// The central correctness property of MedSen's contribution: an encrypted
// acquisition analyzed by the (key-less) cloud and then decoded with the
// key schedule recovers the true particle count, while the raw ciphertext
// peak count is inflated by the key-dependent multiplication factor.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/analysis_service.h"
#include "core/decryptor.h"
#include "core/encryptor.h"
#include "util/stats.h"

namespace medsen::core {
namespace {

struct Rig {
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acquisition;
  KeyParams key_params;

  Rig() {
    channel.loss.enabled = false;
    acquisition.carriers_hz = {5.0e5, 2.0e6};
    acquisition.noise_sigma = 5e-5;
    acquisition.drift.slow_amplitude = 0.002;
    acquisition.drift.random_walk_sigma = 1e-6;
    key_params.num_electrodes = 9;
    key_params.period_s = 4.0;
    // Moderate gains keep every encrypted peak detectable in this rig.
    key_params.gain_min = 0.8;
    key_params.gain_max = 1.6;
  }
};

TEST(CryptoRoundTrip, DecryptedCountMatchesGroundTruth) {
  Rig rig;
  SensorEncryptor encryptor(rig.design, rig.channel, rig.acquisition);
  crypto::ChaChaRng rng(1234);
  const auto schedule = KeySchedule::generate(rig.key_params, 60.0, rng);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 120.0}};
  const auto enc = encryptor.acquire(sample, schedule, 60.0, 555);
  ASSERT_GT(enc.truth.total_particles(), 5u);

  cloud::AnalysisService service;
  const PeakReport report = service.analyze(enc.signals);
  const DecryptionResult decoded =
      decrypt_report(report, schedule, rig.design, 60.0);

  const double truth = static_cast<double>(enc.truth.total_particles());
  EXPECT_NEAR(decoded.estimated_count, truth, std::max(2.0, truth * 0.15));
}

TEST(CryptoRoundTrip, CiphertextCountInflated) {
  Rig rig;
  rig.key_params.min_active_electrodes = 4;  // force heavy multiplication
  SensorEncryptor encryptor(rig.design, rig.channel, rig.acquisition);
  crypto::ChaChaRng rng(77);
  const auto schedule = KeySchedule::generate(rig.key_params, 30.0, rng);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 120.0}};
  const auto enc = encryptor.acquire(sample, schedule, 30.0, 321);
  cloud::AnalysisService service;
  const PeakReport report = service.analyze(enc.signals);

  // The server sees far more peaks than particles (paper Section IV-A).
  EXPECT_GT(report.reference_peak_count(),
            3 * enc.truth.total_particles());
}

TEST(CryptoRoundTrip, PerPeriodMultiplicationFactorsUsed) {
  Rig rig;
  SensorEncryptor encryptor(rig.design, rig.channel, rig.acquisition);
  crypto::ChaChaRng rng(5);
  const auto schedule = KeySchedule::generate(rig.key_params, 20.0, rng);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto enc = encryptor.acquire(sample, schedule, 20.0, 99);
  cloud::AnalysisService service;
  const PeakReport report = service.analyze(enc.signals);
  const DecryptionResult decoded =
      decrypt_report(report, schedule, rig.design, 20.0);
  ASSERT_EQ(decoded.periods.size(), schedule.keys().size());
  for (std::size_t i = 0; i < decoded.periods.size(); ++i) {
    EXPECT_EQ(decoded.periods[i].multiplication,
              rig.design.peaks_per_particle(
                  schedule.keys()[i].key.electrodes));
  }
}

TEST(CryptoRoundTrip, WrongKeyDecodesWrongCount) {
  Rig rig;
  rig.key_params.min_active_electrodes = 5;
  SensorEncryptor encryptor(rig.design, rig.channel, rig.acquisition);
  crypto::ChaChaRng rng(42);
  const auto schedule = KeySchedule::generate(rig.key_params, 30.0, rng);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto enc = encryptor.acquire(sample, schedule, 30.0, 888);
  cloud::AnalysisService service;
  const PeakReport report = service.analyze(enc.signals);

  // Decode with an unrelated key schedule of mostly single electrodes:
  // the estimate should be far off the truth.
  KeyParams weak = rig.key_params;
  weak.min_active_electrodes = 1;
  crypto::ChaChaRng other(4242);
  KeyParams single = weak;
  single.num_electrodes = 9;
  auto wrong = KeySchedule::plaintext(single, 30.0);
  const auto bad = decrypt_report(report, wrong, rig.design, 30.0);
  const auto good = decrypt_report(report, schedule, rig.design, 30.0);
  const double truth = static_cast<double>(enc.truth.total_particles());
  EXPECT_GT(std::abs(bad.estimated_count - truth),
            3.0 * std::abs(good.estimated_count - truth) + 1.0);
}

TEST(CryptoRoundTrip, WidthCorrectionTracksFlow) {
  Rig rig;
  // Stay in the flow range where peak width is transit-limited rather
  // than floored by the lock-in's 120 Hz output filter; above that the
  // width concealment is even stronger but no longer invertible.
  rig.key_params.flow_min_ul_min = 0.05;
  rig.key_params.flow_max_ul_min = 0.10;
  SensorEncryptor encryptor(rig.design, rig.channel, rig.acquisition);
  crypto::ChaChaRng rng(8);
  const auto schedule = KeySchedule::generate(rig.key_params, 40.0, rng);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 80.0}};
  const auto enc = encryptor.acquire(sample, schedule, 40.0, 17);
  cloud::AnalysisService service;
  const PeakReport report = service.analyze(enc.signals);
  const auto decoded = decrypt_report(report, schedule, rig.design, 40.0);

  // Corrected widths should be less dispersed than raw ciphertext widths.
  std::vector<double> raw, corrected;
  for (const auto& p : report.nearest_channel(5e5).peaks)
    raw.push_back(p.width_s);
  for (const auto& p : decoded.peaks) corrected.push_back(p.width_s);
  ASSERT_GT(corrected.size(), 4u);
  const double raw_cv = util::stddev(raw) / util::mean(raw);
  const double corr_cv = util::stddev(corrected) / util::mean(corrected);
  EXPECT_LT(corr_cv, raw_cv * 1.05);
}

TEST(ExpectedGain, WeightsLeadSingly) {
  const auto design = sim::standard_design(9);
  KeyParams p;
  p.num_electrodes = 9;
  SensorKey key;
  key.electrodes = 0b11;  // lead (0) + electrode 1
  key.gain_codes.assign(9, 0);
  key.gain_codes[0] = 15;  // lead at gain_max
  key.gain_codes[1] = 0;   // other at gain_min
  // lead weight 1, other weight 2 -> (gmax + 2*gmin)/3.
  const double expected =
      (gain_value(p, 15) + 2.0 * gain_value(p, 0)) / 3.0;
  EXPECT_NEAR(expected_gain(key, p, design), expected, 1e-12);
}

TEST(ExpectedGain, EmptyKeyFallsBackToUnity) {
  const auto design = sim::standard_design(9);
  KeyParams p;
  p.num_electrodes = 9;
  SensorKey key;  // no electrodes
  EXPECT_DOUBLE_EQ(expected_gain(key, p, design), 1.0);
}

}  // namespace
}  // namespace medsen::core
