#include "core/key.h"

#include <gtest/gtest.h>

#include <bit>

namespace medsen::core {
namespace {

KeyParams nine_electrode_params() {
  KeyParams p;
  p.num_electrodes = 9;
  return p;
}

TEST(Key, GainValueSpansRange) {
  const KeyParams p = nine_electrode_params();
  EXPECT_NEAR(gain_value(p, 0), p.gain_min, 1e-12);
  EXPECT_NEAR(gain_value(p, 15), p.gain_max, 1e-12);
  for (std::uint8_t c = 1; c < 16; ++c)
    EXPECT_GT(gain_value(p, c), gain_value(p, static_cast<std::uint8_t>(c - 1)));
}

TEST(Key, FlowValueSpansRange) {
  const KeyParams p = nine_electrode_params();
  EXPECT_NEAR(flow_value(p, 0), p.flow_min_ul_min, 1e-12);
  EXPECT_NEAR(flow_value(p, 15), p.flow_max_ul_min, 1e-12);
}

TEST(Key, RandomKeyRespectsMinActive) {
  KeyParams p = nine_electrode_params();
  p.min_active_electrodes = 3;
  crypto::ChaChaRng rng(1);
  for (int i = 0; i < 200; ++i) {
    const SensorKey key = random_key(p, rng);
    EXPECT_GE(std::popcount(key.electrodes), 3);
  }
}

TEST(Key, AvoidSuccessiveElectrodes) {
  KeyParams p = nine_electrode_params();
  p.avoid_successive_electrodes = true;
  crypto::ChaChaRng rng(2);
  for (int i = 0; i < 200; ++i) {
    const SensorKey key = random_key(p, rng);
    EXPECT_EQ(key.electrodes & (key.electrodes >> 1), 0u) << key.electrodes;
  }
}

TEST(Key, RandomKeyGainCodesInRange) {
  const KeyParams p = nine_electrode_params();
  crypto::ChaChaRng rng(3);
  const SensorKey key = random_key(p, rng);
  EXPECT_EQ(key.gain_codes.size(), 9u);
  for (auto code : key.gain_codes) EXPECT_LT(code, 16);
  EXPECT_LT(key.flow_code, 16);
}

TEST(KeySchedule, GenerateCoversDuration) {
  KeyParams p = nine_electrode_params();
  p.period_s = 2.0;
  crypto::ChaChaRng rng(4);
  const auto schedule = KeySchedule::generate(p, 10.0, rng);
  EXPECT_EQ(schedule.keys().size(), 5u);
  EXPECT_DOUBLE_EQ(schedule.keys().front().t_start_s, 0.0);
}

TEST(KeySchedule, KeyAtSelectsPeriod) {
  KeyParams p = nine_electrode_params();
  p.period_s = 1.0;
  crypto::ChaChaRng rng(5);
  const auto schedule = KeySchedule::generate(p, 5.0, rng);
  EXPECT_EQ(schedule.key_at(0.5).electrodes,
            schedule.keys()[0].key.electrodes);
  EXPECT_EQ(schedule.key_at(3.2).electrodes,
            schedule.keys()[3].key.electrodes);
  EXPECT_EQ(schedule.key_at(99.0).electrodes,
            schedule.keys().back().key.electrodes);
}

TEST(KeySchedule, ControlTraceMirrorsKeys) {
  KeyParams p = nine_electrode_params();
  crypto::ChaChaRng rng(6);
  const auto schedule = KeySchedule::generate(p, 6.0, rng);
  const auto trace = schedule.control_trace();
  ASSERT_EQ(trace.size(), schedule.keys().size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].active_mask, schedule.keys()[i].key.electrodes);
    EXPECT_EQ(trace[i].gains.size(), 9u);
    EXPECT_GE(trace[i].flow_ul_min, p.flow_min_ul_min - 1e-12);
    EXPECT_LE(trace[i].flow_ul_min, p.flow_max_ul_min + 1e-12);
  }
}

TEST(KeySchedule, SerializationRoundTrip) {
  KeyParams p = nine_electrode_params();
  p.avoid_successive_electrodes = true;
  crypto::ChaChaRng rng(7);
  const auto schedule = KeySchedule::generate(p, 8.0, rng);
  const auto restored = KeySchedule::deserialize(schedule.serialize());
  ASSERT_EQ(restored.keys().size(), schedule.keys().size());
  for (std::size_t i = 0; i < schedule.keys().size(); ++i) {
    EXPECT_EQ(restored.keys()[i].key.electrodes,
              schedule.keys()[i].key.electrodes);
    EXPECT_EQ(restored.keys()[i].key.gain_codes,
              schedule.keys()[i].key.gain_codes);
    EXPECT_EQ(restored.keys()[i].key.flow_code,
              schedule.keys()[i].key.flow_code);
  }
  EXPECT_EQ(restored.params().avoid_successive_electrodes, true);
}

TEST(KeySchedule, TrailingBytesRejected) {
  crypto::ChaChaRng rng(7);
  const auto schedule =
      KeySchedule::generate(nine_electrode_params(), 4.0, rng);
  auto bytes = schedule.serialize();
  bytes.push_back(0x55);
  EXPECT_THROW(KeySchedule::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(KeySchedule::deserialize(bytes));
}

TEST(KeySchedule, TruncatedDeserializationThrows) {
  crypto::ChaChaRng rng(7);
  const auto schedule =
      KeySchedule::generate(nine_electrode_params(), 4.0, rng);
  const auto bytes = schedule.serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 3);
  EXPECT_THROW(KeySchedule::deserialize(cut), std::out_of_range);
}

TEST(KeySchedule, HostileKeyCountRejectedBeforeAllocation) {
  crypto::ChaChaRng rng(7);
  const auto schedule =
      KeySchedule::generate(nine_electrode_params(), 4.0, rng);
  auto bytes = schedule.serialize();
  // The key count lives right after the 51-byte params block; claim
  // 2^32-1 keys and drop the body.
  bytes.resize(55);
  bytes[51] = bytes[52] = bytes[53] = bytes[54] = 0xFF;
  EXPECT_THROW(KeySchedule::deserialize(bytes), std::out_of_range);
}

TEST(KeySchedule, SizeBitsFormula) {
  KeyParams p = nine_electrode_params();  // 9 + 9*4 + 4 = 49 bits/key
  p.period_s = 1.0;
  crypto::ChaChaRng rng(8);
  const auto schedule = KeySchedule::generate(p, 10.0, rng);
  EXPECT_EQ(schedule.size_bits(), 10u * 49u);
}

TEST(KeySchedule, PlaintextIsSingleStableKey) {
  const KeyParams p = nine_electrode_params();
  const auto schedule = KeySchedule::plaintext(p, 60.0);
  ASSERT_EQ(schedule.keys().size(), 1u);
  EXPECT_EQ(std::popcount(schedule.keys()[0].key.electrodes), 1);
  // Gain code closest to unit gain.
  const double g =
      gain_value(p, schedule.keys()[0].key.gain_codes.front());
  EXPECT_NEAR(g, 1.0, 0.1);
  const double f = flow_value(p, schedule.keys()[0].key.flow_code);
  EXPECT_NEAR(f, 0.08, 0.01);
}

TEST(KeySchedule, MultiplicationFactorTracksDesign) {
  const auto design = sim::standard_design(9);
  KeyParams p = nine_electrode_params();
  p.period_s = 1.0;
  crypto::ChaChaRng rng(9);
  const auto schedule = KeySchedule::generate(p, 4.0, rng);
  for (const auto& tk : schedule.keys()) {
    EXPECT_EQ(schedule.multiplication_factor(design, tk.t_start_s + 0.5),
              design.peaks_per_particle(tk.key.electrodes));
  }
}

TEST(KeySchedule, GenerateRejectsBadDurations) {
  const KeyParams p = nine_electrode_params();
  crypto::ChaChaRng rng(10);
  EXPECT_THROW(KeySchedule::generate(p, 0.0, rng), std::invalid_argument);
  KeyParams bad = p;
  bad.period_s = 0.0;
  EXPECT_THROW(KeySchedule::generate(bad, 5.0, rng), std::invalid_argument);
}

TEST(Key, RandomKeysDiffer) {
  const KeyParams p = nine_electrode_params();
  crypto::ChaChaRng rng(11);
  const SensorKey a = random_key(p, rng);
  const SensorKey b = random_key(p, rng);
  EXPECT_TRUE(a.electrodes != b.electrodes || a.gain_codes != b.gain_codes ||
              a.flow_code != b.flow_code);
}

}  // namespace
}  // namespace medsen::core
