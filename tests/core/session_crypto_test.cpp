#include "core/session_crypto.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cmac.h"
#include "net/messages.h"

namespace medsen::core {
namespace {

std::vector<std::uint8_t> test_device_key() {
  return std::vector<std::uint8_t>(16, 0x42);
}

// Build the server's honest AuthResponse to a given challenge envelope.
net::Envelope honest_response(const net::Envelope& challenge,
                              std::span<const std::uint8_t> device_key,
                              std::span<const std::uint8_t> rnd_b) {
  const auto chal = net::AuthChallengePayload::deserialize(challenge.payload);
  net::AuthResponsePayload response;
  std::copy(rnd_b.begin(), rnd_b.end(), response.challenge.begin());
  const auto proof = crypto::session_proof(device_key, chal.challenge, rnd_b);
  std::copy(proof.begin(), proof.end(), response.proof.begin());
  return net::make_envelope(net::MessageType::kAuthResponse,
                            challenge.session_id, challenge.device_id,
                            response.serialize(), device_key, 0);
}

TEST(SessionCrypto, ChallengeRidesCounterZeroWithLongTermKey) {
  SessionCrypto crypto(7, test_device_key(), 3, 1234);
  const auto envelope = crypto.make_challenge(100);

  EXPECT_EQ(envelope.type, net::MessageType::kAuthChallenge);
  EXPECT_EQ(envelope.session_id, 100u);
  EXPECT_EQ(envelope.device_id, 7u);
  EXPECT_EQ(envelope.counter, 0u);
  EXPECT_TRUE(net::verify_envelope(envelope, test_device_key()));

  const auto payload = net::AuthChallengePayload::deserialize(envelope.payload);
  EXPECT_EQ(payload.key_epoch, 3u);
}

TEST(SessionCrypto, SameSeedSameChallenge) {
  SessionCrypto a(7, test_device_key(), 0, 999);
  SessionCrypto b(7, test_device_key(), 0, 999);
  EXPECT_EQ(a.make_challenge(1).serialize(), b.make_challenge(1).serialize());

  SessionCrypto c(7, test_device_key(), 0, 1000);
  EXPECT_NE(a.make_challenge(2).payload, c.make_challenge(2).payload);
}

TEST(SessionCrypto, CompletesAgainstHonestServer) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);

  EXPECT_FALSE(crypto.active());
  ASSERT_TRUE(crypto.complete(honest_response(challenge, key, rnd_b)));
  EXPECT_TRUE(crypto.active());
  EXPECT_EQ(crypto.session_id(), 100u);

  // Both sides derive the same session MAC key.
  const auto chal = net::AuthChallengePayload::deserialize(challenge.payload);
  EXPECT_EQ(crypto.session_mac_key(),
            crypto::derive_session_mac_key(key, chal.challenge, rnd_b));

  // Counters count from 1 after the handshake.
  EXPECT_EQ(crypto.last_counter(), 0u);
  EXPECT_EQ(crypto.next_counter(), 1u);
  EXPECT_EQ(crypto.next_counter(), 2u);
  EXPECT_EQ(crypto.last_counter(), 2u);
}

TEST(SessionCrypto, RejectsForgedProof) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);

  auto forged = honest_response(challenge, key, rnd_b);
  auto payload = net::AuthResponsePayload::deserialize(forged.payload);
  payload.proof[0] ^= 0x01;
  forged = net::make_envelope(net::MessageType::kAuthResponse,
                              forged.session_id, forged.device_id,
                              payload.serialize(), key, 0);
  EXPECT_FALSE(crypto.complete(forged));
  EXPECT_FALSE(crypto.active());
}

TEST(SessionCrypto, RejectsBadEnvelopeMac) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);

  auto tampered = honest_response(challenge, key, rnd_b);
  tampered.mac[0] ^= 0x01;
  EXPECT_FALSE(crypto.complete(tampered));
  EXPECT_FALSE(crypto.active());
}

TEST(SessionCrypto, RejectsMismatchedSessionOrType) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);
  const auto good = honest_response(challenge, key, rnd_b);

  // Wrong session id (a response replayed from another handshake).
  auto wrong_session = net::make_envelope(net::MessageType::kAuthResponse, 999,
                                          good.device_id, good.payload, key, 0);
  EXPECT_FALSE(crypto.complete(wrong_session));

  // Wrong type entirely.
  auto wrong_type = net::make_envelope(net::MessageType::kAuthChallenge, 100,
                                       good.device_id, good.payload, key, 0);
  EXPECT_FALSE(crypto.complete(wrong_type));
  EXPECT_FALSE(crypto.active());
}

TEST(SessionCrypto, ResponseWithoutPendingChallengeFails) {
  const auto key = test_device_key();
  SessionCrypto a(7, key, 0, 1234);
  const auto challenge = a.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);
  const auto response = honest_response(challenge, key, rnd_b);

  ASSERT_TRUE(a.complete(response));
  // Completing twice must fail: RndA was consumed.
  EXPECT_FALSE(a.complete(response));
}

TEST(SessionCrypto, InvalidateDropsTheSession) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);
  ASSERT_TRUE(crypto.complete(honest_response(challenge, key, rnd_b)));
  crypto.next_counter();

  crypto.invalidate();
  EXPECT_FALSE(crypto.active());
  EXPECT_TRUE(crypto.session_mac_key().empty());

  // A fresh handshake uses a fresh RndA and restarts counters at 1.
  const auto second = crypto.make_challenge(101);
  EXPECT_NE(second.payload, challenge.payload);
  ASSERT_TRUE(crypto.complete(honest_response(second, key, rnd_b)));
  EXPECT_EQ(crypto.next_counter(), 1u);
}

TEST(SessionCrypto, NewChallengeInvalidatesActiveSession) {
  const auto key = test_device_key();
  SessionCrypto crypto(7, key, 0, 1234);
  const auto first = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);
  ASSERT_TRUE(crypto.complete(honest_response(first, key, rnd_b)));
  ASSERT_TRUE(crypto.active());

  // Opening a new handshake mid-session drops the old keys immediately.
  crypto.make_challenge(101);
  EXPECT_FALSE(crypto.active());
}

// Legacy free-form (non-16-byte) provisioned keys must still handshake.
TEST(SessionCrypto, LegacyFreeFormKeyHandshakes) {
  const std::vector<std::uint8_t> legacy = {'l', 'e', 'g', 'a', 'c', 'y'};
  SessionCrypto crypto(7, legacy, 0, 1234);
  const auto challenge = crypto.make_challenge(100);
  const std::vector<std::uint8_t> rnd_b(16, 0xb7);
  ASSERT_TRUE(crypto.complete(honest_response(challenge, legacy, rnd_b)));
  EXPECT_EQ(crypto.session_mac_key().size(), 32u);
}

}  // namespace
}  // namespace medsen::core
