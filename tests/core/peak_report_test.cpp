#include "core/peak_report.h"

#include <gtest/gtest.h>

#include "util/serialize.h"

namespace medsen::core {
namespace {

PeakReport sample_report() {
  PeakReport report;
  ChannelPeaks a;
  a.carrier_hz = 5.0e5;
  a.peaks = {{1.0, 0.01, 0.02, 450}, {2.0, 0.02, 0.03, 900}};
  ChannelPeaks b;
  b.carrier_hz = 2.0e6;
  b.peaks = {{1.0, 0.005, 0.02, 450}};
  report.channels = {a, b};
  return report;
}

TEST(PeakReport, NearestChannelPicksClosestCarrier) {
  const auto report = sample_report();
  EXPECT_DOUBLE_EQ(report.nearest_channel(4.0e5).carrier_hz, 5.0e5);
  EXPECT_DOUBLE_EQ(report.nearest_channel(1.9e6).carrier_hz, 2.0e6);
}

TEST(PeakReport, ReferencePeakCount) {
  const auto report = sample_report();
  EXPECT_EQ(report.reference_peak_count(), 2u);
  EXPECT_EQ(report.reference_peak_count(2.0e6), 1u);
}

TEST(PeakReport, EmptyReportThrows) {
  const PeakReport report;
  EXPECT_THROW((void)report.nearest_channel(5.0e5), std::logic_error);
}

TEST(PeakReport, SerializationRoundTrip) {
  const auto report = sample_report();
  const auto restored = PeakReport::deserialize(report.serialize());
  ASSERT_EQ(restored.channels.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.channels[0].carrier_hz, 5.0e5);
  ASSERT_EQ(restored.channels[0].peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].time_s, 2.0);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].amplitude, 0.02);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].width_s, 0.03);
  EXPECT_EQ(restored.channels[0].peaks[1].index, 900u);
}

TEST(PeakReport, EmptySerializationRoundTrip) {
  const PeakReport report;
  const auto restored = PeakReport::deserialize(report.serialize());
  EXPECT_TRUE(restored.channels.empty());
}

TEST(PeakReport, TruncatedDeserializationThrows) {
  const auto bytes = sample_report().serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() / 2);
  EXPECT_THROW(PeakReport::deserialize(cut), std::out_of_range);
}

TEST(PeakReport, TrailingBytesRejected) {
  auto bytes = sample_report().serialize();
  bytes.push_back(0x7F);
  EXPECT_THROW(PeakReport::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(PeakReport::deserialize(bytes));
}

TEST(PeakReport, HostileChannelCountRejectedBeforeAllocation) {
  // Four bytes claiming 2^32-1 channels: count_u32 must reject the count
  // against the (empty) remainder instead of reserving gigabytes.
  const std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(PeakReport::deserialize(bytes), std::out_of_range);
}

TEST(PeakReport, HostilePeakCountRejectedBeforeAllocation) {
  util::ByteWriter w;
  w.u32(1);           // one channel
  w.f64(5.0e5);       // carrier
  w.u32(0x40000000);  // 2^30 peaks with no bytes behind them
  EXPECT_THROW(PeakReport::deserialize(w.data()), std::out_of_range);
}

}  // namespace
}  // namespace medsen::core
