#include "core/peak_report.h"

#include <gtest/gtest.h>

namespace medsen::core {
namespace {

PeakReport sample_report() {
  PeakReport report;
  ChannelPeaks a;
  a.carrier_hz = 5.0e5;
  a.peaks = {{1.0, 0.01, 0.02, 450}, {2.0, 0.02, 0.03, 900}};
  ChannelPeaks b;
  b.carrier_hz = 2.0e6;
  b.peaks = {{1.0, 0.005, 0.02, 450}};
  report.channels = {a, b};
  return report;
}

TEST(PeakReport, NearestChannelPicksClosestCarrier) {
  const auto report = sample_report();
  EXPECT_DOUBLE_EQ(report.nearest_channel(4.0e5).carrier_hz, 5.0e5);
  EXPECT_DOUBLE_EQ(report.nearest_channel(1.9e6).carrier_hz, 2.0e6);
}

TEST(PeakReport, ReferencePeakCount) {
  const auto report = sample_report();
  EXPECT_EQ(report.reference_peak_count(), 2u);
  EXPECT_EQ(report.reference_peak_count(2.0e6), 1u);
}

TEST(PeakReport, EmptyReportThrows) {
  const PeakReport report;
  EXPECT_THROW(report.nearest_channel(5.0e5), std::logic_error);
}

TEST(PeakReport, SerializationRoundTrip) {
  const auto report = sample_report();
  const auto restored = PeakReport::deserialize(report.serialize());
  ASSERT_EQ(restored.channels.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.channels[0].carrier_hz, 5.0e5);
  ASSERT_EQ(restored.channels[0].peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].time_s, 2.0);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].amplitude, 0.02);
  EXPECT_DOUBLE_EQ(restored.channels[0].peaks[1].width_s, 0.03);
  EXPECT_EQ(restored.channels[0].peaks[1].index, 900u);
}

TEST(PeakReport, EmptySerializationRoundTrip) {
  const PeakReport report;
  const auto restored = PeakReport::deserialize(report.serialize());
  EXPECT_TRUE(restored.channels.empty());
}

TEST(PeakReport, TruncatedDeserializationThrows) {
  const auto bytes = sample_report().serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() / 2);
  EXPECT_THROW(PeakReport::deserialize(cut), std::out_of_range);
}

}  // namespace
}  // namespace medsen::core
