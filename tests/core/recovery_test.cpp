// The TCB side of the self-healing loop: the health ledger's strike /
// quarantine lifecycle, the reason->action mapping of plan_recovery, and
// the controller's re-key with suspects masked and flow derated.

#include "core/recovery.h"

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/diagnostic.h"

namespace medsen::core {
namespace {

net::ErrorPayload quality_error(std::vector<std::uint8_t> reasons) {
  net::ErrorPayload error;
  error.code = net::ErrorCode::kQualityRejected;
  error.detail = "test verdict";
  error.channel_reasons = std::move(reasons);
  return error;
}

// channel_reasons bytes are failure bitmasks: bit (1 << reason).
constexpr std::uint8_t bit(net::QualityReason reason) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(reason));
}
constexpr auto kSat = bit(net::QualityReason::kSaturated);
constexpr auto kNoise = bit(net::QualityReason::kNoiseFloor);
constexpr auto kDrift = bit(net::QualityReason::kDrift);
constexpr std::uint8_t kOk = 0;

TEST(HealthLedger, StrikesAccumulateIntoQuarantine) {
  ElectrodeHealthLedger ledger(4, 2);
  EXPECT_EQ(ledger.excluded(), 0u);

  ledger.strike(0b0001);
  EXPECT_EQ(ledger.suspects(), 0b0001u);
  EXPECT_EQ(ledger.quarantined(), 0u);
  EXPECT_EQ(ledger.strikes(0), 1u);

  ledger.strike(0b0001);
  EXPECT_EQ(ledger.quarantined(), 0b0001u);

  // A new session loop forgives suspects but never quarantine.
  ledger.strike(0b0010);
  ledger.begin_loop();
  EXPECT_EQ(ledger.suspects(), 0u);
  EXPECT_EQ(ledger.quarantined(), 0b0001u);
  EXPECT_EQ(ledger.excluded(), 0b0001u);
  EXPECT_EQ(ledger.strikes(1), 1u);  // the counter itself persists
}

TEST(PlanRecovery, NonQualityErrorIsAPlainRetry) {
  net::ErrorPayload error;
  error.code = net::ErrorCode::kOverloaded;
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan = plan_recovery(error, {4, 0b1111, 1.0}, ledger, {});
  EXPECT_EQ(plan.action, RecoveryAction::kRetry);
  EXPECT_EQ(plan.newly_suspect, 0u);
  EXPECT_EQ(ledger.excluded(), 0u);
}

TEST(PlanRecovery, LegacyVerdictWithoutChannelsFlushes) {
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan =
      plan_recovery(quality_error({}), {4, 0b1111, 1.0}, ledger, {});
  EXPECT_EQ(plan.action, RecoveryAction::kFlush);
}

TEST(PlanRecovery, IsolatedFailureStrikesBoundActiveElectrodes) {
  // 4 electrodes over 2 carriers: electrodes 0 and 2 feed channel 0.
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan =
      plan_recovery(quality_error({kSat, kOk}), {4, 0b1111, 1.0}, ledger,
                    {});
  EXPECT_EQ(plan.action, RecoveryAction::kMaskElectrodes);
  EXPECT_EQ(plan.newly_suspect, 0b0101u);
  EXPECT_EQ(ledger.suspects(), 0b0101u);
}

TEST(PlanRecovery, InactiveElectrodesAreNotBlamed) {
  // Only electrode 0 was ever active on the failing channel; electrode 2
  // never touched the signal and must not be struck.
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan =
      plan_recovery(quality_error({kSat, kOk}), {4, 0b0011, 1.0}, ledger,
                    {});
  EXPECT_EQ(plan.newly_suspect, 0b0001u);
}

TEST(PlanRecovery, SystemicSaturationDeratesFlow) {
  ElectrodeHealthLedger ledger(4, 2);
  RetryPolicy policy;
  auto plan = plan_recovery(quality_error({kSat, kSat}), {4, 0b1111, 1.0},
                            ledger, policy);
  EXPECT_EQ(plan.action, RecoveryAction::kReduceFlow);
  EXPECT_DOUBLE_EQ(plan.flow_scale, policy.flow_derate);
  EXPECT_EQ(plan.newly_suspect, 0u);  // systemic: no electrode blamed

  // The cumulative derate floors at min_flow_scale.
  plan = plan_recovery(quality_error({kSat, kSat}),
                       {4, 0b1111, policy.min_flow_scale}, ledger, policy);
  EXPECT_DOUBLE_EQ(plan.flow_scale, policy.min_flow_scale);
}

TEST(PlanRecovery, SystemicNoiseFlushes) {
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan = plan_recovery(quality_error({kNoise, kNoise}),
                                  {4, 0b1111, 1.0}, ledger, {});
  EXPECT_EQ(plan.action, RecoveryAction::kFlush);
  EXPECT_EQ(plan.newly_suspect, 0u);
}

TEST(PlanRecovery, SystemicBitsDoNotShadowIsolatedOnes) {
  // The dead-electrode-plus-bubbles signature: bubbles put drift on BOTH
  // channels (systemic), while the dead electrode additionally saturates
  // its own channel (isolated). The planner must strike only channel 0's
  // electrodes — the systemic drift exonerates channel 1 — even though
  // channel 0's bitmask carries both failures.
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan = plan_recovery(
      quality_error({static_cast<std::uint8_t>(kSat | kDrift), kDrift}),
      {4, 0b1111, 1.0}, ledger, {});
  EXPECT_EQ(plan.action, RecoveryAction::kMaskElectrodes);
  EXPECT_EQ(plan.newly_suspect, 0b0101u);
}

TEST(PlanRecovery, SingleChannelUploadIsAlwaysSystemic) {
  // One carrier cannot isolate an electrode; even a saturated verdict
  // must be treated as systemic rather than striking every electrode.
  ElectrodeHealthLedger ledger(4, 2);
  const auto plan =
      plan_recovery(quality_error({kSat}), {4, 0b1111, 1.0}, ledger, {});
  EXPECT_EQ(plan.action, RecoveryAction::kReduceFlow);
  EXPECT_EQ(plan.newly_suspect, 0u);
}

TEST(PlanRecovery, PersistentFailureWalksPriorSuspectIntoQuarantine) {
  // Attempt 1: channel 0 fails, electrode 0 (the only bound active one)
  // is struck and masked.
  ElectrodeHealthLedger ledger(4, 2);
  (void)plan_recovery(quality_error({kSat, kOk}), {4, 0b0011, 1.0}, ledger,
                      {});
  ASSERT_EQ(ledger.suspects(), 0b0001u);
  ASSERT_EQ(ledger.quarantined(), 0u);

  // Attempt 2: electrode 0 is masked out of the schedule (active union
  // excludes it) yet its channel STILL fails — the stuck-ON signature.
  // The prior suspect is re-struck and crosses into quarantine.
  const auto plan = plan_recovery(quality_error({kSat, kOk}),
                                  {4, 0b0010, 1.0}, ledger, {});
  EXPECT_EQ(plan.newly_suspect, 0b0001u);
  EXPECT_EQ(ledger.quarantined(), 0b0001u);

  // Attempt 3: quarantined electrodes are never struck again.
  const auto plan3 = plan_recovery(quality_error({kSat, kOk}),
                                   {4, 0b0010, 1.0}, ledger, {});
  EXPECT_EQ(plan3.newly_suspect, 0u);
  EXPECT_EQ(ledger.strikes(0), 2u);
}

TEST(RecoveryAction, Names) {
  EXPECT_STREQ(to_string(RecoveryAction::kFlush), "flush");
  EXPECT_STREQ(to_string(RecoveryAction::kReduceFlow), "reduce flow");
  EXPECT_STREQ(to_string(RecoveryAction::kMaskElectrodes),
               "mask electrodes");
  EXPECT_STREQ(to_string(RecoveryAction::kGiveUp), "give up");
}

class ControllerRecoveryTest : public ::testing::Test {
 protected:
  ControllerRecoveryTest()
      : controller_(make_params(), sim::standard_design(9),
                    DiagnosticProfile::cd4_staging(), 21) {}

  static KeyParams make_params() {
    KeyParams params;
    params.num_electrodes = 9;
    params.period_s = 2.0;
    return params;
  }

  Controller controller_;
};

TEST_F(ControllerRecoveryTest, RetrySessionMasksSuspects) {
  (void)controller_.begin_session(20.0);

  // Channel 0 saturated, channel 1 clean: the controller should blame
  // its active electrodes bound to channel 0 and re-key without them.
  const auto plan =
      controller_.plan_recovery(quality_error({kSat, kOk}));
  EXPECT_EQ(plan.action, RecoveryAction::kMaskElectrodes);
  EXPECT_NE(controller_.health().suspects(), 0u);

  (void)controller_.begin_retry_session(20.0);
  const auto& schedule = controller_.session_key_schedule_for_testing();
  for (const auto& timed : schedule.keys())
    EXPECT_EQ(timed.key.electrodes & controller_.health().excluded(), 0u);
}

TEST_F(ControllerRecoveryTest, SystemicVerdictDeratesRetryFlow) {
  (void)controller_.begin_session(20.0);
  const auto before = controller_.session_key_schedule_for_testing();

  const auto plan = controller_.plan_recovery(quality_error({kSat, kSat}));
  EXPECT_EQ(plan.action, RecoveryAction::kReduceFlow);
  EXPECT_LT(controller_.flow_scale(), 1.0);

  (void)controller_.begin_retry_session(20.0);
  const auto& after = controller_.session_key_schedule_for_testing();
  double sum_before = 0.0, sum_after = 0.0;
  for (const auto& timed : before.keys())
    sum_before += flow_value(before.params(), timed.key.flow_code);
  for (const auto& timed : after.keys())
    sum_after += flow_value(after.params(), timed.key.flow_code);
  EXPECT_LT(sum_after / static_cast<double>(after.keys().size()),
            sum_before / static_cast<double>(before.keys().size()));
}

TEST_F(ControllerRecoveryTest, FreshSessionResetsLoopButKeepsQuarantine) {
  (void)controller_.begin_session(20.0);
  // Two strikes on the same channel with the electrode still implicated
  // (prior-suspect path) force a quarantine.
  (void)controller_.plan_recovery(quality_error({kSat, kOk}));
  (void)controller_.begin_retry_session(20.0);
  (void)controller_.plan_recovery(quality_error({kSat, kOk}));
  const auto quarantined = controller_.health().quarantined();
  EXPECT_NE(quarantined, 0u);

  (void)controller_.begin_session(20.0);
  EXPECT_EQ(controller_.health().suspects(), 0u);
  EXPECT_EQ(controller_.health().quarantined(), quarantined);
  EXPECT_DOUBLE_EQ(controller_.flow_scale(), 1.0);
  // The fresh schedule still excludes the quarantined electrodes.
  for (const auto& timed :
       controller_.session_key_schedule_for_testing().keys())
    EXPECT_EQ(timed.key.electrodes & quarantined, 0u);
}

TEST_F(ControllerRecoveryTest, HealthyRecoveryStateIsANoOp) {
  // With a clean ledger at nominal flow the recovery plumbing must not
  // change the schedule: same entropy seed, same keys as a controller
  // that never heard of recovery.
  Controller twin(make_params(), sim::standard_design(9),
                  DiagnosticProfile::cd4_staging(), 21);
  const auto a = controller_.begin_session(20.0);
  const auto b = twin.begin_session(20.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].active_mask, b[i].active_mask);
    EXPECT_EQ(a[i].flow_ul_min, b[i].flow_ul_min);
    EXPECT_EQ(a[i].gains, b[i].gains);
  }
}

}  // namespace
}  // namespace medsen::core
