#include "core/mux.h"

#include <gtest/gtest.h>

namespace medsen::core {
namespace {

TEST(Mux, StartsAllGrounded) {
  const Multiplexer mux(16);
  EXPECT_EQ(mux.state().measured_count(), 0u);
  for (auto route : mux.state().routes)
    EXPECT_EQ(route, MuxRoute::kGround);
}

TEST(Mux, SelectRoutesMaskToMeasurement) {
  Multiplexer mux(16);
  mux.select(0b1011);
  EXPECT_EQ(mux.state().measured_count(), 3u);
  EXPECT_EQ(mux.state().routes[0], MuxRoute::kMeasurement);
  EXPECT_EQ(mux.state().routes[1], MuxRoute::kMeasurement);
  EXPECT_EQ(mux.state().routes[2], MuxRoute::kGround);
  EXPECT_EQ(mux.state().routes[3], MuxRoute::kMeasurement);
}

TEST(Mux, UnselectedElectrodesGrounded) {
  // Section VII-A: unselected outputs must be grounded to prevent
  // interference, not left floating.
  Multiplexer mux(16);
  mux.select(0b1);
  for (std::size_t i = 1; i < 16; ++i)
    EXPECT_EQ(mux.state().routes[i], MuxRoute::kGround) << i;
}

TEST(Mux, MeasurementMaskRoundTrips) {
  Multiplexer mux(16);
  const sim::ElectrodeMask mask = 0b101010101;
  mux.select(mask);
  EXPECT_EQ(mux.state().measurement_mask(), mask);
}

TEST(Mux, ReselectionOverwrites) {
  Multiplexer mux(16);
  mux.select(0xFFFF);
  mux.select(0b1);
  EXPECT_EQ(mux.state().measured_count(), 1u);
}

TEST(Mux, SwitchCountIncrements) {
  Multiplexer mux(16);
  EXPECT_EQ(mux.switch_count(), 0u);
  mux.select(1);
  mux.select(2);
  EXPECT_EQ(mux.switch_count(), 2u);
}

TEST(Mux, BitsBeyondInputsIgnored) {
  Multiplexer mux(4);
  mux.select(0xFFFFFFFF);
  EXPECT_EQ(mux.state().measured_count(), 4u);
}

TEST(Mux, InvalidSizesThrow) {
  EXPECT_THROW(Multiplexer(0), std::invalid_argument);
  EXPECT_THROW(Multiplexer(33), std::invalid_argument);
}

}  // namespace
}  // namespace medsen::core
