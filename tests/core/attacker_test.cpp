#include "core/attacker.h"

#include <gtest/gtest.h>

#include "cloud/analysis_service.h"
#include "core/decryptor.h"
#include "core/encryptor.h"

namespace medsen::core {
namespace {

struct AttackRig {
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acquisition;
  KeyParams key_params;

  AttackRig() {
    channel.loss.enabled = false;
    acquisition.carriers_hz = {5.0e5};
    acquisition.noise_sigma = 5e-5;
    acquisition.drift.slow_amplitude = 0.002;
    acquisition.drift.random_walk_sigma = 1e-6;
    key_params.num_electrodes = 9;
    key_params.period_s = 3.0;
    key_params.min_active_electrodes = 2;
    key_params.gain_min = 0.8;
    key_params.gain_max = 1.6;
  }

  struct Run {
    PeakReport report;
    std::size_t truth = 0;
    KeySchedule schedule{KeyParams{}, {TimedKey{}}};
  };

  Run run(std::uint64_t seed) {
    SensorEncryptor encryptor(design, channel, acquisition);
    crypto::ChaChaRng rng(seed);
    auto schedule = KeySchedule::generate(key_params, 45.0, rng);
    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBead780, 120.0}};
    const auto enc = encryptor.acquire(sample, schedule, 45.0, seed + 1);
    cloud::AnalysisService service;
    Run out;
    out.report = service.analyze(enc.signals);
    out.truth = enc.truth.total_particles();
    out.schedule = std::move(schedule);
    return out;
  }
};

TEST(Attacker, NaiveCountGrosslyOverestimates) {
  AttackRig rig;
  const auto run = rig.run(100);
  NaiveCountAttacker attacker;
  const double estimate = attacker.estimate_count(run.report);
  EXPECT_GT(estimate, 2.0 * static_cast<double>(run.truth));
}

TEST(Attacker, DecryptorBeatsAllAttackers) {
  AttackRig rig;
  const auto run = rig.run(200);
  const auto decoded =
      decrypt_report(run.report, run.schedule, rig.design, 45.0);
  const double truth = static_cast<double>(run.truth);
  const double legit_error =
      recovery_error(decoded.estimated_count, truth);
  for (auto& attacker : standard_attackers(rig.design)) {
    const double error =
        recovery_error(attacker->estimate_count(run.report), truth);
    EXPECT_GT(error, legit_error) << attacker->name();
  }
}

TEST(Attacker, RecoveryErrorMetric) {
  EXPECT_DOUBLE_EQ(recovery_error(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(recovery_error(150.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(recovery_error(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(recovery_error(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(recovery_error(0.0, 0.0), 0.0);
}

TEST(Attacker, StandardSetHasSixStrategies) {
  const auto attackers = standard_attackers(sim::standard_design(9));
  ASSERT_EQ(attackers.size(), 6u);
  EXPECT_EQ(attackers[0]->name(), "naive-count");
  EXPECT_EQ(attackers[1]->name(), "division");
  EXPECT_EQ(attackers[2]->name(), "amplitude-signature");
  EXPECT_EQ(attackers[3]->name(), "width-signature");
  EXPECT_EQ(attackers[4]->name(), "gap-cluster");
  EXPECT_EQ(attackers[5]->name(), "periodic-train");
}

TEST(Attacker, PeriodicTrainCountsUniformTrains) {
  // Two cells, each a train of 5 peaks at a uniform 11 ms interval,
  // separated by a long gap: the attacker recovers 2 cells.
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  for (int cell = 0; cell < 2; ++cell)
    for (int k = 0; k < 5; ++k)
      ch.peaks.push_back({cell * 3.0 + k * 0.011, 0.01, 0.02, 0});
  report.channels.push_back(ch);
  PeriodicTrainAttacker attacker;
  EXPECT_DOUBLE_EQ(attacker.estimate_count(report), 2.0);
}

TEST(Attacker, PeriodicTrainDefeatedByHeterogeneousIntervals) {
  // Same two cells but intra-train intervals alternate 11/45 ms (the
  // avoid-successive-electrodes countermeasure): the chains break and
  // the attacker badly overcounts.
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  for (int cell = 0; cell < 2; ++cell) {
    double t = cell * 3.0;
    for (int k = 0; k < 6; ++k) {
      ch.peaks.push_back({t, 0.01, 0.02, 0});
      t += (k % 2 == 0) ? 0.011 : 0.045;
    }
  }
  report.channels.push_back(ch);
  PeriodicTrainAttacker attacker;
  EXPECT_GT(attacker.estimate_count(report), 4.0);
}

TEST(Attacker, GapClusterCountsTrains) {
  // Three tight trains of 5 peaks each, long gaps between trains.
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  for (int train = 0; train < 3; ++train)
    for (int k = 0; k < 5; ++k)
      ch.peaks.push_back({train * 2.0 + k * 0.01, 0.01, 0.02, 0});
  report.channels.push_back(ch);
  GapClusterAttacker attacker;
  EXPECT_DOUBLE_EQ(attacker.estimate_count(report), 3.0);
}

TEST(Attacker, GapClusterConfusedByIrregularSpacing) {
  // Peaks spread with comparable intra/inter gaps give no clean trains.
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  double t = 0.0;
  for (int i = 0; i < 15; ++i) {
    t += 0.05 + 0.04 * (i % 3);
    ch.peaks.push_back({t, 0.01, 0.02, 0});
  }
  report.channels.push_back(ch);
  GapClusterAttacker attacker;
  // 15 peaks from (say) 3 cells, but no gap exceeds 3x the median.
  EXPECT_LT(attacker.estimate_count(report), 3.0);
}

TEST(Attacker, DivisionAttackerUsesAllOnFactor) {
  const auto design = sim::standard_design(9);
  DivisionAttacker attacker(design);
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  ch.peaks.assign(17, dsp::Peak{});
  report.channels.push_back(ch);
  // 17 peaks / factor 17 = 1 particle.
  EXPECT_DOUBLE_EQ(attacker.estimate_count(report), 1.0);
}

TEST(Attacker, AmplitudeSignatureDefeatedByGains) {
  // Same amplitudes -> clusters collapse; random gains -> many clusters.
  PeakReport uniform;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  for (int i = 0; i < 10; ++i) ch.peaks.push_back({0.1 * i, 0.01, 0.02, 0});
  uniform.channels.push_back(ch);
  AmplitudeSignatureAttacker attacker(0.1);
  EXPECT_DOUBLE_EQ(attacker.estimate_count(uniform), 1.0);

  PeakReport gained;
  ChannelPeaks ch2;
  ch2.carrier_hz = 5.0e5;
  for (int i = 0; i < 10; ++i)
    ch2.peaks.push_back({0.1 * i, 0.01 * (1.0 + 0.5 * (i % 2)), 0.02, 0});
  gained.channels.push_back(ch2);
  EXPECT_GT(attacker.estimate_count(gained), 5.0);
}

TEST(Attacker, WidthSignatureDefeatedByFlowModulation) {
  PeakReport uniform;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  for (int i = 0; i < 8; ++i) ch.peaks.push_back({0.1 * i, 0.01, 0.02, 0});
  uniform.channels.push_back(ch);
  WidthSignatureAttacker attacker(0.1);
  EXPECT_DOUBLE_EQ(attacker.estimate_count(uniform), 1.0);

  PeakReport modulated;
  ChannelPeaks ch2;
  ch2.carrier_hz = 5.0e5;
  for (int i = 0; i < 8; ++i)
    ch2.peaks.push_back({0.1 * i, 0.01, 0.02 * (1.0 + 0.6 * (i % 2)), 0});
  modulated.channels.push_back(ch2);
  EXPECT_GT(attacker.estimate_count(modulated), 4.0);
}

}  // namespace
}  // namespace medsen::core
