#include "core/escrow.h"

#include <gtest/gtest.h>

#include "cloud/analysis_service.h"
#include "core/encryptor.h"

namespace medsen::core {
namespace {

std::vector<std::uint8_t> secret() { return {10, 20, 30, 40}; }

KeySchedule sample_schedule() {
  KeyParams params;
  params.num_electrodes = 9;
  params.period_s = 2.0;
  crypto::ChaChaRng rng(31);
  return KeySchedule::generate(params, 12.0, rng);
}

TEST(Escrow, RoundTripRecoversSchedule) {
  const auto schedule = sample_schedule();
  const auto package = escrow_key_schedule(schedule, secret(), 1);
  const auto recovered = recover_key_schedule(package, secret());
  EXPECT_EQ(recovered.serialize(), schedule.serialize());
}

TEST(Escrow, CiphertextDiffersFromPlaintext) {
  const auto schedule = sample_schedule();
  const auto package = escrow_key_schedule(schedule, secret(), 2);
  EXPECT_NE(package.ciphertext, schedule.serialize());
}

TEST(Escrow, WrongSecretRejected) {
  const auto package = escrow_key_schedule(sample_schedule(), secret(), 3);
  const std::vector<std::uint8_t> wrong = {9, 9, 9};
  EXPECT_THROW((void)recover_key_schedule(package, wrong),
               std::runtime_error);
}

TEST(Escrow, TamperedCiphertextRejected) {
  auto package = escrow_key_schedule(sample_schedule(), secret(), 4);
  package.ciphertext[package.ciphertext.size() / 2] ^= 0x01;
  EXPECT_THROW((void)recover_key_schedule(package, secret()),
               std::runtime_error);
}

TEST(Escrow, TamperedNonceRejected) {
  auto package = escrow_key_schedule(sample_schedule(), secret(), 5);
  package.nonce[0] ^= 0x01;
  EXPECT_THROW((void)recover_key_schedule(package, secret()),
               std::runtime_error);
}

TEST(Escrow, DistinctEntropyDistinctPackages) {
  const auto schedule = sample_schedule();
  const auto a = escrow_key_schedule(schedule, secret(), 10);
  const auto b = escrow_key_schedule(schedule, secret(), 11);
  EXPECT_NE(a.nonce, b.nonce);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST(Escrow, SerializationRoundTrip) {
  const auto package = escrow_key_schedule(sample_schedule(), secret(), 6);
  const auto restored = EscrowPackage::deserialize(package.serialize());
  EXPECT_EQ(restored.nonce, package.nonce);
  EXPECT_EQ(restored.ciphertext, package.ciphertext);
  EXPECT_EQ(restored.mac, package.mac);
  EXPECT_NO_THROW((void)recover_key_schedule(restored, secret()));
}

TEST(Escrow, TrailingBytesRejected) {
  const auto package = escrow_key_schedule(sample_schedule(), secret(), 6);
  auto bytes = package.serialize();
  bytes.push_back(0x01);
  EXPECT_THROW(EscrowPackage::deserialize(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(EscrowPackage::deserialize(bytes));
}

TEST(Escrow, TruncatedDeserializationThrows) {
  const auto package = escrow_key_schedule(sample_schedule(), secret(), 6);
  const auto bytes = package.serialize();
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 1);
  EXPECT_THROW(EscrowPackage::deserialize(cut), std::out_of_range);
}

TEST(Escrow, PractitionerDecodesStoredReport) {
  // Full practitioner flow: the controller escrows the session key; the
  // practitioner later unwraps it and decodes the cloud's stored report.
  const auto design = sim::standard_design(9);
  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  sim::AcquisitionConfig acquisition;
  acquisition.carriers_hz = {5.0e5};
  acquisition.noise_sigma = 5e-5;
  acquisition.drift.slow_amplitude = 0.002;
  acquisition.drift.random_walk_sigma = 1e-6;

  KeyParams params;
  params.num_electrodes = 9;
  params.period_s = 4.0;
  params.gain_min = 0.8;
  params.gain_max = 1.6;
  crypto::ChaChaRng rng(77);
  const double duration = 40.0;
  const auto schedule = KeySchedule::generate(params, duration, rng);

  SensorEncryptor encryptor(design, channel, acquisition);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 120.0}};
  const auto enc = encryptor.acquire(sample, schedule, duration, 88);
  cloud::AnalysisService service;
  const auto report = service.analyze(enc.signals);

  const auto package = escrow_key_schedule(schedule, secret(), 99);
  const auto decoded =
      practitioner_decrypt(package, secret(), report, design, duration);
  const double truth = static_cast<double>(enc.truth.total_particles());
  EXPECT_NEAR(decoded.estimated_count, truth, std::max(2.0, truth * 0.15));
}

}  // namespace
}  // namespace medsen::core
