#include "core/controller.h"

#include <gtest/gtest.h>

namespace medsen::core {
namespace {

Controller make_controller(std::uint64_t seed = 1) {
  KeyParams params;
  params.num_electrodes = 9;
  params.period_s = 2.0;
  return Controller(params, sim::standard_design(9),
                    DiagnosticProfile::cd4_staging(), seed);
}

TEST(Controller, RejectsMismatchedDesign) {
  KeyParams params;
  params.num_electrodes = 5;
  EXPECT_THROW(Controller(params, sim::standard_design(9),
                          DiagnosticProfile::cd4_staging(), 1),
               std::invalid_argument);
}

TEST(Controller, BeginSessionReturnsControlTrace) {
  auto controller = make_controller();
  const auto trace = controller.begin_session(10.0);
  EXPECT_EQ(trace.size(), 5u);  // 10 s / 2 s periods
  EXPECT_TRUE(controller.session_active());
}

TEST(Controller, OperationsBeforeSessionThrow) {
  auto controller = make_controller();
  EXPECT_FALSE(controller.session_active());
  EXPECT_THROW((void)controller.session_volume_ul(), std::logic_error);
  EXPECT_THROW((void)controller.session_key_bits(), std::logic_error);
  EXPECT_THROW(controller.decrypt(PeakReport{}), std::logic_error);
}

TEST(Controller, SessionVolumeIntegratesFlow) {
  auto controller = make_controller();
  (void)controller.begin_session(60.0);
  const double volume = controller.session_volume_ul();
  const auto& params = controller.key_params();
  EXPECT_GE(volume, params.flow_min_ul_min * 1.0 - 1e-9);
  EXPECT_LE(volume, params.flow_max_ul_min * 1.0 + 1e-9);
}

TEST(Controller, KeyBitsMatchScheduleFormula) {
  auto controller = make_controller();
  (void)controller.begin_session(10.0);
  // 5 keys x (9 + 9*4 + 4) = 5 * 49.
  EXPECT_EQ(controller.session_key_bits(), 5u * 49u);
}

TEST(Controller, FreshKeysPerSession) {
  auto controller = make_controller();
  (void)controller.begin_session(10.0);
  const auto first =
      controller.session_key_schedule_for_testing().serialize();
  (void)controller.begin_session(10.0);
  const auto second =
      controller.session_key_schedule_for_testing().serialize();
  EXPECT_NE(first, second);
}

TEST(Controller, PlaintextSessionSingleSegment) {
  auto controller = make_controller();
  const auto trace = controller.begin_plaintext_session(30.0);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Controller, DifferentSeedsDifferentSchedules) {
  auto a = make_controller(1);
  auto b = make_controller(2);
  (void)a.begin_session(10.0);
  (void)b.begin_session(10.0);
  EXPECT_NE(a.session_key_schedule_for_testing().serialize(),
            b.session_key_schedule_for_testing().serialize());
}

TEST(Controller, ConcludeOnEmptyReportGivesAlertDiagnosis) {
  auto controller = make_controller();
  (void)controller.begin_session(10.0);
  PeakReport report;
  ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  report.channels.push_back(ch);
  const Diagnosis d = controller.conclude(report);
  EXPECT_DOUBLE_EQ(d.estimated_count, 0.0);
  EXPECT_TRUE(d.alert);  // zero CD4 count is the severe band
}

}  // namespace
}  // namespace medsen::core
