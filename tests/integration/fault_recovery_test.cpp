// Fault x recovery matrix: every injected sensor fault driven through
// the full self-healing loop (controller -> faulty acquisition -> relay
// -> cloud quality gate -> per-channel verdict -> controller recovery ->
// re-keyed retry), alone and in pairs. Asserts the recovery action each
// fault provokes, that every session terminates within the retry budget
// (degrading instead of throwing), and that outcomes are bit-for-bit
// deterministic for a fixed seed. Runs the cloud analysis with a 2-way
// thread pool so the TSan configuration exercises the threaded path.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "cloud/server.h"
#include "core/controller.h"
#include "phone/relay.h"
#include "sim/acquisition.h"

namespace medsen {
namespace {

const std::vector<std::uint8_t> kMacKey = {0x5E, 0x55, 0x10};

using FaultSetup = std::function<void(sim::FaultConfig&)>;

struct NamedFault {
  std::string name;
  FaultSetup setup;
  /// Action the controller must take after the first rejection (kNone =
  /// no constraint, for faults whose combined signature is seed-shaped).
  core::RecoveryAction expected_first_action = core::RecoveryAction::kNone;
  /// Whether default policy is expected to heal this fault (channel-level
  /// front-end faults are unreachable from E(t) and end degraded).
  bool expect_healed = true;
};

std::vector<NamedFault> fault_matrix() {
  return {
      {"open_electrode",
       [](sim::FaultConfig& f) {
         f.open.enabled = true;
         f.open.electrode = 0;
         f.open.onset = {0.1, 0.2};
       },
       core::RecoveryAction::kMaskElectrodes, true},
      {"shorted_electrode",
       [](sim::FaultConfig& f) {
         f.short_circuit.enabled = true;
         f.short_circuit.electrode = 2;
         f.short_circuit.onset = {0.1, 0.2};
       },
       core::RecoveryAction::kMaskElectrodes, true},
      {"stuck_on_mux",
       [](sim::FaultConfig& f) {
         f.stuck_mux.enabled = true;
         f.stuck_mux.electrode = 4;
         f.stuck_mux.stuck_on = true;
         f.stuck_mux.onset = {0.1, 0.2};
       },
       core::RecoveryAction::kMaskElectrodes, false},
      {"bubbles",
       [](sim::FaultConfig& f) {
         f.bubbles.enabled = true;
         f.bubbles.attempts_affected = 1;
       },
       core::RecoveryAction::kFlush, true},
      {"clog_stall",
       [](sim::FaultConfig& f) {
         f.clog.enabled = true;
         f.clog.onset = {0.15, 0.25};
         f.clog.tau_s = 2.0;  // aggressive: stalls well inside a session
       },
       core::RecoveryAction::kReduceFlow, false},
      {"adc_stuck",
       [](sim::FaultConfig& f) {
         f.adc_stuck.enabled = true;
         f.adc_stuck.channel = 1;
         f.adc_stuck.window_frac = 0.4;
       },
       core::RecoveryAction::kMaskElectrodes, false},
      {"gain_drift",
       [](sim::FaultConfig& f) {
         f.gain_drift.enabled = true;
         f.gain_drift.channel = 0;
         f.gain_drift.onset = {0.1, 0.2};
         f.gain_drift.drift_per_s = 0.08;
       },
       core::RecoveryAction::kMaskElectrodes, false},
      {"saturation",
       [](sim::FaultConfig& f) {
         f.saturation.enabled = true;
         f.saturation.channel = 1;
         f.saturation.onset = {0.1, 0.2};
       },
       core::RecoveryAction::kMaskElectrodes, false},
  };
}

struct SessionSetup {
  double duration_s = 30.0;
  std::uint64_t controller_seed = 11;
  std::uint64_t acquisition_seed = 77;
  std::uint64_t fault_seed = 0x1457;
};

phone::SessionOutcome run_session(const FaultSetup& setup,
                                  const SessionSetup& opts = {}) {
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  sim::AcquisitionConfig acquisition;
  acquisition.carriers_hz = {5.0e5, 2.0e6};
  acquisition.noise_sigma = 5e-5;
  acquisition.drift.slow_amplitude = 0.002;
  acquisition.drift.random_walk_sigma = 1e-6;
  acquisition.faults.seed = opts.fault_seed;
  setup(acquisition.faults);

  core::KeyParams key_params;
  key_params.num_electrodes = 9;
  key_params.period_s = 4.0;
  key_params.gain_min = 0.8;
  key_params.gain_max = 1.6;

  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(),
                              opts.controller_seed);
  cloud::AnalysisConfig analysis;
  analysis.threads = 2;  // exercise the threaded path under TSan
  auto server = cloud::CloudServer(analysis, auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 300.0}};

  const phone::AcquireFn acquire =
      [&](std::span<const sim::ControlSegment> control, double duration_s,
          std::size_t attempt) {
        auto config = acquisition;
        config.faults.attempt = attempt;
        return sim::acquire(sample, channel, design, config, control,
                            duration_s, opts.acquisition_seed)
            .signals;
      };

  return relay.run_diagnostic_session(controller, opts.duration_s, acquire,
                                      /*session_base_id=*/100, server,
                                      kMacKey);
}

void expect_equal_outcomes(const phone::SessionOutcome& a,
                           const phone::SessionOutcome& b) {
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.quality_rejections, b.quality_rejections);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.recovered, b.recovered);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i)
    EXPECT_EQ(a.actions[i], b.actions[i]);
  EXPECT_EQ(a.diagnosis.estimated_count, b.diagnosis.estimated_count);
  EXPECT_EQ(a.diagnosis.confidence, b.diagnosis.confidence);
}

TEST(FaultRecovery, EachFaultAloneTerminatesWithTheExpectedAction) {
  for (const auto& fault : fault_matrix()) {
    SCOPED_TRACE(fault.name);
    const auto outcome = run_session(fault.setup);

    // Each fault must be noticed: the quality gate rejects at least the
    // first attempt, and the loop never exceeds the retry budget.
    EXPECT_GE(outcome.quality_rejections, 1u);
    EXPECT_LE(outcome.attempts, core::RetryPolicy{}.max_attempts);
    ASSERT_FALSE(outcome.actions.empty());
    if (fault.expected_first_action != core::RecoveryAction::kNone)
      EXPECT_EQ(outcome.actions.front(), fault.expected_first_action);

    // Healable faults recover to a full-confidence diagnosis; unhealable
    // ones degrade gracefully instead of throwing.
    if (fault.expect_healed) {
      EXPECT_FALSE(outcome.degraded);
      EXPECT_TRUE(outcome.recovered);
      EXPECT_DOUBLE_EQ(outcome.diagnosis.confidence, 1.0);
    }
    if (outcome.degraded) {
      EXPECT_EQ(outcome.actions.back(), core::RecoveryAction::kGiveUp);
      EXPECT_DOUBLE_EQ(outcome.diagnosis.confidence,
                       core::RetryPolicy{}.degraded_confidence);
    }
    EXPECT_TRUE(std::isfinite(outcome.diagnosis.estimated_count));
  }
}

TEST(FaultRecovery, PairwiseFaultsTerminateAndStayDeterministic) {
  const auto matrix = fault_matrix();
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = i + 1; j < matrix.size(); ++j) {
      SCOPED_TRACE(matrix[i].name + "+" + matrix[j].name);
      const FaultSetup both = [&](sim::FaultConfig& f) {
        matrix[i].setup(f);
        matrix[j].setup(f);
      };
      const auto outcome = run_session(both);
      EXPECT_GE(outcome.quality_rejections, 1u);
      EXPECT_LE(outcome.attempts, core::RetryPolicy{}.max_attempts);
      EXPECT_TRUE(std::isfinite(outcome.diagnosis.estimated_count));
      // Terminal state is always one of: healed or explicitly degraded.
      if (outcome.degraded)
        EXPECT_EQ(outcome.actions.back(), core::RecoveryAction::kGiveUp);
      else
        EXPECT_TRUE(outcome.recovered);

      expect_equal_outcomes(outcome, run_session(both));
    }
  }
}

TEST(FaultRecovery, DeadElectrodePlusBubblesHealsWithinThreeAttempts) {
  // The headline scenario: one dead electrode plus transient bubbles.
  // Attempt 1 is rejected (systemic bubble noise + the dead electrode's
  // railed channel); the controller masks the suspects and the flush
  // carries the bubbles out; the session converges to a full-confidence
  // diagnosis within the default three-attempt budget.
  const FaultSetup setup = [](sim::FaultConfig& f) {
    f.open.enabled = true;
    f.open.electrode = 0;
    f.open.onset = {0.1, 0.2};
    f.bubbles.enabled = true;
    f.bubbles.attempts_affected = 1;
  };
  const auto outcome = run_session(setup);
  EXPECT_LE(outcome.attempts, 3u);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_TRUE(outcome.recovered);
  EXPECT_GE(outcome.quality_rejections, 1u);
  EXPECT_DOUBLE_EQ(outcome.diagnosis.confidence, 1.0);
  EXPECT_GT(outcome.diagnosis.estimated_count, 0.0);
}

TEST(FaultRecovery, ExhaustedRetriesDegradeInsteadOfThrowing) {
  // A persistently stuck ADC cannot be healed by re-keying: all three
  // attempts are rejected and the session ends in an explicit degraded
  // diagnosis produced on the phone, never an exception.
  const FaultSetup setup = [](sim::FaultConfig& f) {
    f.adc_stuck.enabled = true;
    f.adc_stuck.channel = 1;
    f.adc_stuck.window_frac = 0.4;
    f.adc_stuck.attempts_affected = 0;  // persists forever
  };
  const auto outcome = run_session(setup);
  EXPECT_EQ(outcome.attempts, core::RetryPolicy{}.max_attempts);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.quality_rejections, core::RetryPolicy{}.max_attempts);
  EXPECT_EQ(outcome.actions.back(), core::RecoveryAction::kGiveUp);
  EXPECT_DOUBLE_EQ(outcome.diagnosis.confidence,
                   core::RetryPolicy{}.degraded_confidence);
  EXPECT_TRUE(std::isfinite(outcome.diagnosis.estimated_count));
}

TEST(FaultRecovery, StuckOnMuxWalksIntoQuarantine) {
  // Masking cannot disconnect a stuck-ON multiplexer bit: the channel
  // keeps failing after the re-key, the prior suspect is re-struck, and
  // the electrode ends the session quarantined.
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  sim::AcquisitionConfig acquisition;
  acquisition.carriers_hz = {5.0e5, 2.0e6};
  acquisition.noise_sigma = 5e-5;
  acquisition.drift.slow_amplitude = 0.002;
  acquisition.drift.random_walk_sigma = 1e-6;
  acquisition.faults.stuck_mux.enabled = true;
  acquisition.faults.stuck_mux.electrode = 4;
  acquisition.faults.stuck_mux.stuck_on = true;
  acquisition.faults.stuck_mux.onset = {0.1, 0.2};

  core::KeyParams key_params;
  key_params.num_electrodes = 9;
  key_params.period_s = 4.0;

  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 11);
  cloud::AnalysisConfig analysis;
  analysis.threads = 2;
  auto server = cloud::CloudServer(analysis, auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 300.0}};

  const phone::AcquireFn acquire =
      [&](std::span<const sim::ControlSegment> control, double duration_s,
          std::size_t attempt) {
        auto config = acquisition;
        config.faults.attempt = attempt;
        return sim::acquire(sample, channel, design, config, control,
                            duration_s, 77)
            .signals;
      };
  const auto outcome = relay.run_diagnostic_session(
      controller, 30.0, acquire, 500, server, kMacKey);
  EXPECT_GE(outcome.quality_rejections, 2u);
  EXPECT_NE(controller.health().quarantined(), 0u);
  // The stuck electrode itself must be among the quarantined set.
  EXPECT_NE(controller.health().quarantined() & (sim::ElectrodeMask{1} << 4),
            0u);
}

TEST(FaultRecovery, FaultFreeSessionSucceedsFirstTry) {
  const auto outcome = run_session([](sim::FaultConfig&) {});
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.quality_rejections, 0u);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_FALSE(outcome.recovered);
  EXPECT_TRUE(outcome.actions.empty());
  EXPECT_DOUBLE_EQ(outcome.diagnosis.confidence, 1.0);
}

}  // namespace
}  // namespace medsen
