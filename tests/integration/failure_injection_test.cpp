// Failure injection across module boundaries: corrupted frames, truncated
// envelopes, compression bombs of garbage, mismatched sessions — the
// pipeline must fail loudly, never silently decode garbage. At the cloud
// service boundary "loudly" means a structured kError envelope; inside a
// module it means an exception.

#include <gtest/gtest.h>

#include "cloud/server.h"
#include "compress/codec.h"
#include "core/controller.h"
#include "crypto/chacha20.h"
#include "net/frame.h"
#include "net/messages.h"

namespace medsen {
namespace {

const std::vector<std::uint8_t> kMacKey = {9, 9, 9};

TEST(FailureInjection, RandomBytesNeverDecodeAsFrame) {
  crypto::ChaChaRng rng(404);
  int surprises = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> junk(20 + rng.uniform(200));
    rng.fill(junk);
    try {
      (void)net::frame_decode(junk);
      ++surprises;  // would need magic + length + CRC to all line up
    } catch (const std::exception&) {
    }
  }
  EXPECT_EQ(surprises, 0);
}

TEST(FailureInjection, RandomBytesNeverDecompress) {
  crypto::ChaChaRng rng(405);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> junk(50 + rng.uniform(500));
    rng.fill(junk);
    EXPECT_THROW((void)compress::decompress(junk), std::exception);
  }
}

TEST(FailureInjection, BitflippedCompressedDataDetected) {
  crypto::ChaChaRng rng(406);
  std::string csv;
  for (int i = 0; i < 500; ++i)
    csv += std::to_string(i) + ",0.99" + std::to_string(rng.uniform(100)) +
           "\n";
  const auto packed = compress::compress_string(csv);
  int undetected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = packed;
    const std::size_t pos = rng.uniform(static_cast<std::uint32_t>(
        corrupted.size()));
    corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    try {
      const auto out = compress::decompress(corrupted);
      if (std::string(out.begin(), out.end()) != csv) ++undetected;
    } catch (const std::exception&) {
    }
  }
  EXPECT_EQ(undetected, 0);
}

TEST(FailureInjection, GarbageUploadPayloadRejected) {
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  server.provision_device(1, kMacKey);
  crypto::ChaChaRng rng(407);
  std::vector<std::uint8_t> junk(300);
  rng.fill(junk);
  const auto envelope = net::make_envelope(net::MessageType::kSignalUpload,
                                           1, 1, std::move(junk), kMacKey);
  // MAC passes (attacker owns the junk) but the decoder throw must be
  // converted to a malformed error at the service boundary, never escape.
  const auto response = server.handle(envelope);
  ASSERT_EQ(response.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(response.payload).code,
            net::ErrorCode::kMalformed);
}

TEST(FailureInjection, CompressedFlagOnUncompressedDataRejected) {
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  server.provision_device(1, kMacKey);
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(100, 1.0));
  net::SignalUploadPayload payload;
  payload.compressed = true;  // lie: data is raw
  payload.data = net::serialize_series(series);
  const auto envelope = net::make_envelope(net::MessageType::kSignalUpload,
                                           1, 1, payload.serialize(), kMacKey);
  const auto response = server.handle(envelope);
  ASSERT_EQ(response.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(response.payload).code,
            net::ErrorCode::kMalformed);
}

TEST(FailureInjection, KeyScheduleDeserializeRejectsTruncation) {
  core::KeyParams params;
  params.num_electrodes = 9;
  crypto::ChaChaRng rng(408);
  const auto schedule = core::KeySchedule::generate(params, 10.0, rng);
  const auto bytes = schedule.serialize();
  for (std::size_t cut : {std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    const std::span<const std::uint8_t> truncated(bytes.data(), cut);
    EXPECT_THROW((void)core::KeySchedule::deserialize(truncated),
                 std::exception);
  }
}

TEST(FailureInjection, ControllerSurvivesEmptyChannelsReport) {
  core::KeyParams params;
  params.num_electrodes = 9;
  core::Controller controller(params, sim::standard_design(9),
                              core::DiagnosticProfile::cd4_staging(), 1);
  (void)controller.begin_session(10.0);
  core::PeakReport report;  // no channels at all
  EXPECT_THROW(controller.conclude(report), std::logic_error);
}

}  // namespace
}  // namespace medsen
