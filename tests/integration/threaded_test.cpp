// Threaded integration: sensor/controller, phone and cloud run as
// concurrent components exchanging framed envelopes over in-process
// message queues — the shape of the prototype's USB daemon + Android app
// + cloud service deployment.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "net/channel.h"
#include "net/frame.h"

namespace medsen {
namespace {

const std::vector<std::uint8_t> kMacKey = {0x01, 0x02};

TEST(Threaded, FullProtocolOverMessageQueues) {
  net::DuplexChannel sensor_phone;  // a = sensor, b = phone
  net::DuplexChannel phone_cloud;   // a = phone, b = cloud

  // --- Sensor thread: acquire, send upload, await result, decode.
  core::KeyParams key_params;
  key_params.num_electrodes = 9;
  key_params.period_s = 4.0;
  key_params.gain_min = 0.8;
  key_params.gain_max = 1.6;
  const auto design = sim::standard_design(9);

  double decoded_count = -1.0;
  std::size_t true_count = 0;

  std::thread sensor([&] {
    core::Controller controller(key_params, design,
                                core::DiagnosticProfile::cd4_staging(), 21);
    (void)controller.begin_session(30.0);

    sim::ChannelConfig channel;
    channel.loss.enabled = false;
    sim::AcquisitionConfig acquisition;
    acquisition.carriers_hz = {5.0e5};
    acquisition.noise_sigma = 5e-5;
    acquisition.drift.slow_amplitude = 0.002;
    acquisition.drift.random_walk_sigma = 1e-6;
    core::SensorEncryptor encryptor(design, channel, acquisition);
    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBead780, 150.0}};
    const auto enc = encryptor.acquire(
        sample, controller.session_key_schedule_for_testing(), 30.0, 31);
    true_count = enc.truth.total_particles();

    net::SignalUploadPayload payload;
    payload.sample_rate_hz = 450.0;
    payload.data = net::serialize_series(enc.signals);
    const auto envelope = net::make_envelope(
        net::MessageType::kSignalUpload, 7, 1, payload.serialize(), kMacKey);
    sensor_phone.a_to_b.send(net::frame_encode(envelope.serialize()));

    const auto frame = sensor_phone.b_to_a.receive();
    ASSERT_TRUE(frame.has_value());
    const auto response =
        net::Envelope::deserialize(net::frame_decode(*frame));
    ASSERT_TRUE(net::verify_envelope(response, kMacKey));
    const auto report = core::PeakReport::deserialize(response.payload);
    decoded_count = controller.decrypt(report).estimated_count;
  });

  // --- Phone thread: dumb relay both ways.
  std::thread phone([&] {
    const auto up = sensor_phone.a_to_b.receive();
    ASSERT_TRUE(up.has_value());
    phone_cloud.a_to_b.send(*up);
    const auto down = phone_cloud.b_to_a.receive();
    ASSERT_TRUE(down.has_value());
    sensor_phone.b_to_a.send(*down);
  });

  // --- Cloud thread: analyze and respond.
  std::thread cloud_thread([&] {
    auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                     auth::CytoAlphabet{},
                                     auth::ParticleClassifier::train({}));
    server.provision_device(1, kMacKey);
    const auto frame = phone_cloud.a_to_b.receive();
    ASSERT_TRUE(frame.has_value());
    const auto request =
        net::Envelope::deserialize(net::frame_decode(*frame));
    const auto response = server.handle(request);
    phone_cloud.b_to_a.send(net::frame_encode(response.serialize()));
  });

  sensor.join();
  phone.join();
  cloud_thread.join();

  ASSERT_GT(true_count, 0u);
  EXPECT_NEAR(decoded_count, static_cast<double>(true_count),
              std::max(3.0, static_cast<double>(true_count) * 0.15));
}

TEST(Threaded, PhoneCannotForgeWithoutKey) {
  // A malicious phone altering the upload is detected by the cloud's MAC
  // check — the relay is outside the TCB.
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  server.provision_device(1, kMacKey);
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(1000, 1.0));
  net::SignalUploadPayload payload;
  payload.data = net::serialize_series(series);
  auto envelope = net::make_envelope(net::MessageType::kSignalUpload, 1, 1,
                                     payload.serialize(), kMacKey);
  envelope.payload[envelope.payload.size() / 2] ^= 0x01;  // phone tampers
  const auto response = server.handle(envelope);
  ASSERT_EQ(response.type, net::MessageType::kError);
  const auto error = net::ErrorPayload::deserialize(response.payload);
  EXPECT_EQ(error.code, net::ErrorCode::kBadMac);
}

}  // namespace
}  // namespace medsen
