// Property sweeps across the design space: the encrypt-analyze-decrypt
// round trip must hold for every fabricated electrode-array variant and
// for any key rotation period; serialization layers must reject random
// truncation without crashing.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/analysis_service.h"
#include "core/decryptor.h"
#include "core/encryptor.h"
#include "core/escrow.h"
#include "net/messages.h"

namespace medsen {
namespace {

core::KeyParams sweep_params(std::size_t electrodes) {
  core::KeyParams params;
  params.num_electrodes = electrodes;
  params.period_s = 4.0;
  params.gain_min = 0.8;
  params.gain_max = 1.6;
  return params;
}

sim::AcquisitionConfig sweep_acquisition() {
  sim::AcquisitionConfig config;
  config.carriers_hz = {5.0e5};
  config.noise_sigma = 5e-5;
  config.drift.slow_amplitude = 0.002;
  config.drift.random_walk_sigma = 1e-6;
  return config;
}

class ElectrodeCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ElectrodeCountSweep, RoundTripAcrossDesigns) {
  const std::size_t electrodes = GetParam();
  const auto design = sim::standard_design(electrodes);
  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  const auto acquisition = sweep_acquisition();
  const auto params = sweep_params(electrodes);

  core::SensorEncryptor encryptor(design, channel, acquisition);
  crypto::ChaChaRng rng(electrodes);
  const double duration = 45.0;
  const auto schedule =
      core::KeySchedule::generate(params, duration, rng);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 130.0}};
  const auto enc = encryptor.acquire(sample, schedule, duration,
                                     1000 + electrodes);
  ASSERT_GT(enc.truth.total_particles(), 2u);

  cloud::AnalysisService service;
  const auto report = service.analyze(enc.signals);
  const auto decoded =
      core::decrypt_report(report, schedule, design, duration);
  const double truth = static_cast<double>(enc.truth.total_particles());
  EXPECT_NEAR(decoded.estimated_count, truth, std::max(2.5, truth * 0.2))
      << electrodes << " electrodes";
}

INSTANTIATE_TEST_SUITE_P(Designs, ElectrodeCountSweep,
                         ::testing::Values(2, 3, 5, 9, 16));

class KeyPeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(KeyPeriodSweep, RoundTripAcrossRotationRates) {
  const auto design = sim::standard_design(9);
  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  auto params = sweep_params(9);
  params.period_s = GetParam();

  core::SensorEncryptor encryptor(design, channel, sweep_acquisition());
  crypto::ChaChaRng rng(static_cast<std::uint64_t>(GetParam() * 10));
  const double duration = 40.0;
  const auto schedule =
      core::KeySchedule::generate(params, duration, rng);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 250.0}};
  const auto enc = encryptor.acquire(sample, schedule, duration, 77);
  ASSERT_GT(enc.truth.total_particles(), 2u);

  cloud::AnalysisService service;
  const auto decoded = core::decrypt_report(
      service.analyze(enc.signals), schedule, design, duration);
  const double truth = static_cast<double>(enc.truth.total_particles());
  // Long periods leave only a couple of keys per run, so one unlucky
  // low-gain period biases the estimate more: allow a wider margin.
  EXPECT_NEAR(decoded.estimated_count, truth, std::max(4.0, truth * 0.25))
      << "period " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Periods, KeyPeriodSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 20.0));

TEST(SerializationFuzz, TruncationsNeverCrash) {
  // Build one of each serialized artifact, then feed every truncated
  // prefix (and some bit-flipped variants) to its deserializer.
  crypto::ChaChaRng rng(99);
  core::KeyParams params = sweep_params(9);
  const auto schedule = core::KeySchedule::generate(params, 10.0, rng);

  core::PeakReport report;
  core::ChannelPeaks ch;
  ch.carrier_hz = 5.0e5;
  ch.peaks = {{1.0, 0.01, 0.02, 450}, {2.0, 0.02, 0.01, 900}};
  report.channels.push_back(ch);

  const std::vector<std::uint8_t> secret = {1, 2, 3};
  const auto package = core::escrow_key_schedule(schedule, secret, 5);
  const auto envelope = net::make_envelope(
      net::MessageType::kSignalUpload, 7, 1, {1, 2, 3, 4}, secret);

  struct Artifact {
    const char* name;
    std::vector<std::uint8_t> bytes;
    std::function<void(std::span<const std::uint8_t>)> parse;
  };
  const std::vector<Artifact> artifacts = {
      {"KeySchedule", schedule.serialize(),
       [](std::span<const std::uint8_t> b) {
         (void)core::KeySchedule::deserialize(b);
       }},
      {"PeakReport", report.serialize(),
       [](std::span<const std::uint8_t> b) {
         (void)core::PeakReport::deserialize(b);
       }},
      {"EscrowPackage", package.serialize(),
       [](std::span<const std::uint8_t> b) {
         (void)core::EscrowPackage::deserialize(b);
       }},
      {"Envelope", envelope.serialize(),
       [](std::span<const std::uint8_t> b) {
         (void)net::Envelope::deserialize(b);
       }},
  };

  for (const auto& artifact : artifacts) {
    // Every strict prefix must throw (no silent partial parses for these
    // fixed-layout artifacts), and never crash.
    for (std::size_t cut = 0; cut < artifact.bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(artifact.bytes.data(), cut);
      EXPECT_THROW(artifact.parse(prefix), std::exception)
          << artifact.name << " cut at " << cut;
    }
    // Random bit flips must never crash; parse may or may not throw
    // (flips in value fields are legitimately undetectable here —
    // integrity is the MAC/CRC layers' job).
    for (int trial = 0; trial < 64; ++trial) {
      auto mutated = artifact.bytes;
      mutated[rng.uniform(static_cast<std::uint32_t>(mutated.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
      try {
        artifact.parse(mutated);
      } catch (const std::exception&) {
      }
    }
  }
}

}  // namespace
}  // namespace medsen
