// The allow_legacy_plane=false posture end to end: with the legacy
// static-key plane disabled, counter-0 command traffic — even correctly
// MAC'd under the device's provisioned key — must be refused with
// kAuthRequired, while the handshake itself (the one message that
// legitimately rides counter 0) and all session-plane traffic work
// unchanged through the production PhoneRelay path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cloud/server.h"
#include "core/controller.h"
#include "phone/relay.h"

namespace medsen {
namespace {

util::MultiChannelSeries one_cell_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  for (std::size_t i = 0; i < 9000; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    const double z = (t - 5.0) / 0.008;
    double v = 1.0 - 0.01 * std::exp(-0.5 * z * z);
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

std::vector<std::uint8_t> upload_payload(
    const util::MultiChannelSeries& series) {
  net::SignalUploadPayload upload;
  upload.compressed = false;
  upload.sample_rate_hz = 450.0;
  upload.data = net::serialize_series(series);
  return upload.serialize();
}

cloud::CloudServer make_locked_server() {
  cloud::ServiceConfig service;
  service.quality_gate = false;
  service.allow_legacy_plane = false;
  return cloud::CloudServer(cloud::AnalysisConfig{}, auth::CytoAlphabet{},
                            auth::ParticleClassifier::train({}),
                            auth::VerifierConfig{}, nullptr, service);
}

// A correctly MAC'd counter-0 command on the provisioned static key is
// refused: possession of the long-term key alone no longer moves data.
TEST(LegacyPlaneOff, CounterZeroCommandRefused) {
  auto server = make_locked_server();
  const std::vector<std::uint8_t> mac_key = {0x13, 0x37};
  server.provision_device(7, mac_key);

  const auto payload = upload_payload(one_cell_series());
  const auto upload = net::make_envelope(net::MessageType::kSignalUpload,
                                         /*session=*/1, /*device=*/7,
                                         payload, mac_key);
  const auto response = server.handle(upload);
  ASSERT_EQ(response.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(response.payload).code,
            net::ErrorCode::kAuthRequired);

  // The auth pass is a command too — same refusal.
  net::AuthPassPayload pass;
  pass.upload.compressed = false;
  pass.upload.sample_rate_hz = 450.0;
  pass.upload.data = net::serialize_series(one_cell_series());
  pass.volume_ul = 1.0;
  const auto auth = net::make_envelope(net::MessageType::kAuthPass,
                                       /*session=*/2, /*device=*/7,
                                       pass.serialize(), mac_key);
  const auto auth_response = server.handle(auth);
  ASSERT_EQ(auth_response.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(auth_response.payload).code,
            net::ErrorCode::kAuthRequired);
}

// The production path still works: handshake through PhoneRelay, then
// session-plane commands with advancing counters — while the very same
// legacy envelope keeps bouncing off the closed plane.
TEST(LegacyPlaneOff, SessionTrafficSucceedsEndToEnd) {
  auto server = make_locked_server();
  const std::vector<std::uint8_t> mac_key = {0x44, 0x55, 0x66};

  const auto design = sim::standard_design(9);
  core::KeyParams params;
  params.num_electrodes = 9;
  core::Controller controller(params, design,
                              core::DiagnosticProfile::cd4_staging(), 11);
  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);

  // The handshake is the one exchange that legitimately rides counter 0.
  ASSERT_TRUE(relay.establish_session(controller, 500, server));

  const auto series = one_cell_series();
  const auto first = relay.relay_analysis(series, 0, server, {},
                                          controller.session_crypto());
  ASSERT_EQ(first.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(first.counter, 1u);
  const auto second = relay.relay_analysis(series, 0, server, {},
                                           controller.session_crypto());
  ASSERT_EQ(second.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(second.counter, 2u);

  // A live session does not reopen the legacy plane for the device.
  const auto legacy = server.handle(net::make_envelope(
      net::MessageType::kSignalUpload, /*session=*/9,
      relay.config().device_id, upload_payload(series), mac_key));
  ASSERT_EQ(legacy.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(legacy.payload).code,
            net::ErrorCode::kAuthRequired);

  // And the refusal did not disturb the negotiated session.
  const auto third = relay.relay_analysis(series, 0, server, {},
                                          controller.session_crypto());
  ASSERT_EQ(third.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(third.counter, 3u);
}

// Back-compat guard: the default ServiceConfig keeps the legacy plane
// open so mixed fleets can upgrade incrementally.
TEST(LegacyPlaneOff, DefaultConfigStillServesLegacyTraffic) {
  cloud::ServiceConfig service;
  service.quality_gate = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  const std::vector<std::uint8_t> mac_key = {0x01};
  server.provision_device(3, mac_key);
  const auto response = server.handle(net::make_envelope(
      net::MessageType::kSignalUpload, /*session=*/1, /*device=*/3,
      upload_payload(one_cell_series()), mac_key));
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
}

}  // namespace
}  // namespace medsen
