// Cloud restart survivability: enrollments and stored records written to
// disk by one server instance must be fully usable by a fresh instance —
// including authenticating a real sensor pass against the reloaded
// database.

#include <gtest/gtest.h>

#include <cstdio>

#include "cloud/persistence.h"
#include "cloud/server.h"
#include "util/fileio.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "phone/relay.h"

namespace medsen {
namespace {

TEST(Restart, AuthenticationSurvivesServerRestart) {
  const std::string enroll_path =
      std::string(::testing::TempDir()) + "/medsen_restart_enroll.bin";
  const std::string records_path =
      std::string(::testing::TempDir()) + "/medsen_restart_records.bin";

  auth::CytoAlphabet alphabet;
  auth::CytoCode code;
  code.levels = {2, 1};

  // --- First server lifetime: enroll and persist.
  {
    auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                     auth::ParticleClassifier::train({}));
    server.enrollments().enroll("alice", code);
    server.store_result(code, {1, {0xAA, 0xBB}});
    cloud::save_enrollments(server.enrollments(), enroll_path);
    cloud::save_records(server.records(), records_path);
  }

  // --- Second lifetime: fresh process state, reload from disk.
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train({}));
  {
    const auto db = cloud::load_enrollments(enroll_path);
    for (const auto& record : db.records())
      server.enrollments().enroll(record.user_id, record.code);
    const auto store = cloud::load_records(records_path);
    store.visit([&](const std::string& key,
                    const std::vector<cloud::StoredRecord>& records) {
      server.records().restore(key, records);
    });
  }
  EXPECT_EQ(server.enrollments().lookup(code), "alice");
  EXPECT_EQ(server.records().latest(code)->session_id, 1u);

  // --- A real authentication pass against the reloaded state.
  const auto design = sim::standard_design(9);
  core::KeyParams params;
  params.num_electrodes = 9;
  core::Controller controller(params, design,
                              core::DiagnosticProfile::cd4_staging(), 3);
  const double duration = 120.0;
  (void)controller.begin_plaintext_session(duration);

  sim::ChannelConfig channel;
  channel.loss.enabled = false;
  sim::AcquisitionConfig acquisition;
  acquisition.noise_sigma = 5e-5;
  acquisition.drift.slow_amplitude = 0.002;
  acquisition.drift.random_walk_sigma = 1e-6;
  core::SensorEncryptor encryptor(design, channel, acquisition);
  sim::SampleSpec sample;
  sample.components = auth::encode_mixture(alphabet, code);
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration, 7);

  phone::PhoneRelay relay;
  const std::vector<std::uint8_t> mac_key = {0x33};
  server.provision_device(relay.config().device_id, mac_key);
  const auto response =
      relay.relay_auth(enc.signals, 5, controller.session_volume_ul(),
                       server, mac_key, duration);
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  EXPECT_TRUE(decision.authenticated);
  EXPECT_EQ(decision.user_id, "alice");

  std::remove(enroll_path.c_str());
  std::remove(records_path.c_str());
}

// The keying plane across a restart: the device registry (legacy keys,
// master epochs, enrollment/revocation) persists and reloads, but
// negotiated sessions deliberately do NOT — the restarted server answers
// in-session traffic with kAuthRequired and the device re-handshakes,
// with counter state starting fresh under the new session key.
TEST(Restart, SessionsDieButRegistrySurvivesRestart) {
  const std::string registry_path =
      std::string(::testing::TempDir()) + "/medsen_restart_registry.bin";

  const std::vector<std::uint8_t> mac_key = {0x44, 0x55};
  const auto design = sim::standard_design(9);
  core::KeyParams params;
  params.num_electrodes = 9;
  core::Controller controller(params, design,
                              core::DiagnosticProfile::cd4_staging(), 3);
  phone::PhoneRelay relay;
  controller.enable_session_crypto(relay.config().device_id, mac_key);

  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  for (std::size_t i = 0; i < 9000; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    const double z = (t - 5.0) / 0.008;
    double v = 1.0 - 0.01 * std::exp(-0.5 * z * z);
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));

  // --- First lifetime: provision, handshake, run session commands,
  // persist the registry (sessions are not persisted by design).
  {
    auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                     auth::CytoAlphabet{},
                                     auth::ParticleClassifier::train({}));
    server.provision_device(relay.config().device_id, mac_key);
    server.rotate_master_key(1, std::vector<std::uint8_t>(16, 0x5a));
    server.enroll_device(99);

    ASSERT_TRUE(relay.establish_session(controller, 100, server));
    const auto response = relay.relay_analysis(series, 0, server, {},
                                               controller.session_crypto());
    ASSERT_EQ(response.type, net::MessageType::kAnalysisResult);
    EXPECT_EQ(response.counter, 1u);

    cloud::save_registry(server.devices(), registry_path);
  }

  // --- Second lifetime: reload the registry into a fresh server.
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  cloud::load_registry(server.devices(), registry_path);
  EXPECT_EQ(server.devices().current_epoch(), 1u);
  EXPECT_TRUE(server.devices().lookup(99).has_value());

  // The old session died with the process: its counters resume mid-way
  // and the server, holding no session, demands a fresh handshake.
  auto* crypto = controller.session_crypto();
  ASSERT_TRUE(crypto->active());
  const auto stale = relay.relay_analysis(series, 0, server, {}, crypto);
  ASSERT_EQ(stale.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(stale.payload).code,
            net::ErrorCode::kAuthRequired);

  // Re-handshake against the reloaded registry; counters restart at 1.
  crypto->invalidate();
  ASSERT_TRUE(relay.establish_session(controller, 101, server));
  const auto fresh = relay.relay_analysis(series, 0, server, {}, crypto);
  ASSERT_EQ(fresh.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(fresh.counter, 1u);
  EXPECT_TRUE(net::verify_envelope(fresh, crypto->session_mac_key()));

  std::remove(registry_path.c_str());
}

// A crash between opening the output file and finishing the write must
// not destroy the previous good database. save_enrollments/save_records
// write a sibling .tmp and rename it into place, so the worst a crash
// can leave behind is a truncated .tmp next to an intact live file.
TEST(Restart, TornWriteLeavesPreviousDatabaseLoadable) {
  const std::string path =
      std::string(::testing::TempDir()) + "/medsen_torn_enroll.bin";

  auth::CytoAlphabet alphabet;
  auth::CytoCode code;
  code.levels = {1, 2};
  auth::EnrollmentDatabase db(alphabet);
  db.enroll("bob", code);
  cloud::save_enrollments(db, path);

  // Simulate a crash mid-save: a later save got as far as writing a
  // truncated temp file and died before the rename.
  {
    const auto good = util::read_file(path);
    std::vector<std::uint8_t> torn(good.begin(),
                                   good.begin() + good.size() / 2);
    util::write_file(path + ".tmp", torn);
  }

  // The live file is untouched and still loads.
  const auto reloaded = cloud::load_enrollments(path);
  EXPECT_EQ(reloaded.lookup(code), "bob");
  // The torn temp file itself is rejected by the sealed-format check.
  EXPECT_THROW((void)cloud::load_enrollments(path + ".tmp"),
               std::exception);

  // A subsequent successful save replaces the target and reuses the
  // temp path, leaving no stale .tmp behind.
  db.enroll("carol", auth::CytoCode{{2, 2}});
  cloud::save_enrollments(db, path);
  EXPECT_FALSE(util::file_exists(path + ".tmp"));
  EXPECT_EQ(cloud::load_enrollments(path).lookup(code), "bob");

  std::remove(path.c_str());
}

}  // namespace
}  // namespace medsen
