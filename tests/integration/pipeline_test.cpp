// End-to-end integration: controller -> encrypted acquisition -> phone
// relay -> cloud analysis -> controller decode -> diagnosis, plus the
// cyto-coded authentication pass. This is the full MedSen protocol of
// paper Fig. 2 running over the simulated substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "auth/verifier.h"
#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "phone/relay.h"

namespace medsen {
namespace {

const std::vector<std::uint8_t> kMacKey = {0xAA, 0xBB, 0xCC};

struct Testbed {
  sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acquisition;
  core::KeyParams key_params;

  Testbed() {
    channel.loss.enabled = false;
    acquisition.carriers_hz = {5.0e5, 2.0e6};
    acquisition.noise_sigma = 5e-5;
    acquisition.drift.slow_amplitude = 0.002;
    acquisition.drift.random_walk_sigma = 1e-6;
    key_params.num_electrodes = 9;
    key_params.period_s = 4.0;
    key_params.gain_min = 0.8;
    key_params.gain_max = 1.6;
  }
};

TEST(Pipeline, EncryptedDiagnosisEndToEnd) {
  Testbed bed;
  core::Controller controller(bed.key_params, bed.design,
                              core::DiagnosticProfile::cd4_staging(), 1);
  core::SensorEncryptor encryptor(bed.design, bed.channel, bed.acquisition);
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);

  const double duration = 60.0;
  (void)controller.begin_session(duration);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration, 77);

  const auto response =
      relay.relay_analysis(enc.signals, 1, server, kMacKey);
  ASSERT_TRUE(net::verify_envelope(response, kMacKey));
  const auto report = core::PeakReport::deserialize(response.payload);

  const core::Diagnosis diagnosis = controller.conclude(report);
  const double truth = static_cast<double>(enc.truth.total_particles());
  EXPECT_NEAR(diagnosis.estimated_count, truth,
              std::max(3.0, truth * 0.15));
  EXPECT_GT(diagnosis.volume_ul, 0.0);
}

TEST(Pipeline, CloudSeesOnlyInflatedCiphertext) {
  Testbed bed;
  bed.key_params.min_active_electrodes = 3;
  core::Controller controller(bed.key_params, bed.design,
                              core::DiagnosticProfile::cd4_staging(), 2);
  core::SensorEncryptor encryptor(bed.design, bed.channel, bed.acquisition);
  cloud::AnalysisService service;

  (void)controller.begin_session(30.0);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), 30.0, 5);
  const auto report = service.analyze(enc.signals);
  EXPECT_GT(report.reference_peak_count(),
            2 * enc.truth.total_particles());
}

TEST(Pipeline, AuthenticationPassIdentifiesUser) {
  Testbed bed;
  auth::CytoAlphabet alphabet;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train({}));
  auth::CytoCode alice;
  alice.levels = {2, 1};  // 300/uL small beads, 150/uL large beads
  server.enrollments().enroll("alice", alice);

  // Plaintext (encryption-off) pass with Alice's bead mixture in PBS.
  core::Controller controller(bed.key_params, bed.design,
                              core::DiagnosticProfile::cd4_staging(), 3);
  const double duration = 120.0;
  (void)controller.begin_plaintext_session(duration);

  sim::SampleSpec sample;
  sample.components = auth::encode_mixture(alphabet, alice);
  core::SensorEncryptor encryptor(bed.design, bed.channel, bed.acquisition);
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration, 9);

  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  const double volume = controller.session_volume_ul();
  const auto response =
      relay.relay_auth(enc.signals, 2, volume, server, kMacKey, duration);
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  EXPECT_TRUE(decision.authenticated);
  EXPECT_EQ(decision.user_id, "alice");
}

TEST(Pipeline, WrongBeadMixtureRejected) {
  Testbed bed;
  auth::CytoAlphabet alphabet;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train({}));
  auth::CytoCode alice;
  alice.levels = {4, 4};
  server.enrollments().enroll("alice", alice);

  core::Controller controller(bed.key_params, bed.design,
                              core::DiagnosticProfile::cd4_staging(), 4);
  (void)controller.begin_plaintext_session(60.0);

  // An impostor submits a blank sample (no beads).
  sim::SampleSpec blank;
  blank.components = {{sim::ParticleType::kBloodCell, 100.0}};
  core::SensorEncryptor encryptor(bed.design, bed.channel, bed.acquisition);
  const auto enc = encryptor.acquire(
      blank, controller.session_key_schedule_for_testing(), 60.0, 10);

  phone::PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  const auto response = relay.relay_auth(
      enc.signals, 3, controller.session_volume_ul(), server, kMacKey,
      60.0);
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  EXPECT_FALSE(decision.authenticated);
}

TEST(Pipeline, StoredResultsRetrievableByIdentifier) {
  auth::CytoCode code;
  code.levels = {1, 3};
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  server.store_result(code, {42, {0xDE, 0xAD}});
  const auto latest = server.records().latest(code);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->session_id, 42u);
}

}  // namespace
}  // namespace medsen
