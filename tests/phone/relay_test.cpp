#include "phone/relay.h"

#include <gtest/gtest.h>

#include <cmath>

namespace medsen::phone {
namespace {

const std::vector<std::uint8_t> kMacKey = {5, 6, 7, 8};

util::MultiChannelSeries dip_series(std::size_t dips, std::size_t n = 9000) {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (std::size_t d = 0; d < dips; ++d) {
      const double z = (t - (3.0 + 2.0 * static_cast<double>(d))) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    // A grain of quantized (ADC-like) noise so the quality gate's
    // stuck-ADC detector sees a live signal while the samples stay
    // compressible.
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

cloud::CloudServer make_server() {
  return cloud::CloudServer(cloud::AnalysisConfig{}, auth::CytoAlphabet{},
                            auth::ParticleClassifier::train({}));
}

TEST(PhoneRelay, RelaysAndReturnsReport) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay;
  const auto response =
      relay.relay_analysis(dip_series(3), 11, server, kMacKey);
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 3u);
}

TEST(PhoneRelay, TimingBreakdownPopulated) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay;
  (void)relay.relay_analysis(dip_series(2), 1, server, kMacKey);
  const RelayTiming& timing = relay.timing();
  EXPECT_GT(timing.usb_in_s, 0.0);
  EXPECT_GT(timing.uplink_s, 0.0);
  EXPECT_GT(timing.analysis_s, 0.0);
  EXPECT_GT(timing.downlink_s, 0.0);
  EXPECT_NEAR(timing.total_s(),
              timing.usb_in_s + timing.compression_s + timing.uplink_s +
                  timing.analysis_s + timing.downlink_s + timing.usb_out_s,
              1e-12);
}

TEST(PhoneRelay, CompressionShrinksUpload) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  RelayConfig with;
  with.compress_uploads = true;
  RelayConfig without;
  without.compress_uploads = false;
  PhoneRelay compressed(with), raw(without);
  const auto series = dip_series(2);
  (void)compressed.relay_analysis(series, 1, server, kMacKey);
  (void)raw.relay_analysis(series, 2, server, kMacKey);
  EXPECT_LT(compressed.last_upload_bytes(), raw.last_upload_bytes() / 2);
}

TEST(PhoneRelay, SmallUploadSkipsCompression) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay;
  (void)relay.relay_analysis(dip_series(0, 100), 1, server, kMacKey);
  EXPECT_DOUBLE_EQ(relay.timing().compression_s, 0.0);
}

TEST(PhoneRelay, ProgressEventsEmitted) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay;
  std::vector<std::string> events;
  relay.set_progress_callback(
      [&](const std::string& msg) { events.push_back(msg); });
  (void)relay.relay_analysis(dip_series(1), 1, server, kMacKey);
  EXPECT_GE(events.size(), 3u);
  EXPECT_EQ(events.back(), "analysis complete");
}

TEST(PhoneRelay, LocalAnalysisScaledByProfile) {
  RelayConfig config;
  config.profile = nexus5_profile();
  PhoneRelay relay(config);
  const auto report =
      relay.analyze_locally(dip_series(2), cloud::AnalysisConfig{});
  EXPECT_EQ(report.reference_peak_count(), 2u);
  EXPECT_GT(relay.timing().analysis_s, 0.0);
}

TEST(PhoneRelay, CsvFormatRoundTrips) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  RelayConfig config;
  config.csv_format = true;
  PhoneRelay relay(config);
  const auto response =
      relay.relay_analysis(dip_series(3), 21, server, kMacKey);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 3u);
}

TEST(PhoneRelay, CsvUploadLargerThanBinary) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  RelayConfig csv;
  csv.csv_format = true;
  csv.compress_uploads = false;
  RelayConfig binary;
  binary.compress_uploads = false;
  PhoneRelay csv_relay(csv), binary_relay(binary);
  const auto series = dip_series(1);
  (void)csv_relay.relay_analysis(series, 1, server, kMacKey);
  (void)binary_relay.relay_analysis(series, 2, server, kMacKey);
  EXPECT_GT(csv_relay.last_upload_bytes(), binary_relay.last_upload_bytes());
}

TEST(PhoneRelay, CompressedCsvRoundTrips) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  RelayConfig config;
  config.csv_format = true;
  config.compress_uploads = true;
  PhoneRelay relay(config);
  const auto response =
      relay.relay_analysis(dip_series(2), 22, server, kMacKey);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 2u);
  EXPECT_GT(relay.timing().compression_s, 0.0);
}

RelayConfig lossy_config(double drop_rate) {
  RelayConfig config;
  config.reliable_transport = true;
  config.uplink_faults.drop_rate = drop_rate;
  config.uplink_faults.corrupt_rate = 0.02;
  config.uplink_faults.duplicate_rate = 0.05;
  config.uplink_faults.seed = 1234;
  config.downlink_faults = config.uplink_faults;
  config.downlink_faults.seed = 5678;
  config.reliable.chunk_bytes = 256;  // many chunks -> faults guaranteed
  config.reliable.retry_budget = 400;
  return config;
}

TEST(PhoneRelay, LossyLinkRoundTripBitIdenticalToLossless) {
  const auto series = dip_series(3);

  auto lossless_server = make_server();
  lossless_server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay lossless;
  const auto clean =
      lossless.relay_analysis(series, 31, lossless_server, kMacKey);

  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay(lossy_config(0.10));
  const auto response = relay.relay_analysis(series, 31, server, kMacKey);

  // The ARQ layer must hand the cloud the exact upload and the phone the
  // exact response: the serialized PeakReport is bit-identical.
  EXPECT_EQ(response.payload, clean.payload);
  EXPECT_TRUE(net::verify_envelope(response, kMacKey));
  EXPECT_FALSE(relay.timing().local_fallback);
  EXPECT_GT(relay.timing().retransmissions, 0u);
  EXPECT_GT(relay.timing().timeouts, 0u);
  // Retransmissions and timeout waits make the lossy uplink slower than
  // the idealized one.
  EXPECT_GT(relay.timing().uplink_s, lossless.timing().uplink_s);
}

TEST(PhoneRelay, RetryBudgetExhaustionFallsBackToLocalAnalysis) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  auto config = lossy_config(1.0);  // black hole
  config.reliable.retry_budget = 4;
  PhoneRelay relay(config);
  const auto series = dip_series(2);

  std::vector<std::string> events;
  relay.set_progress_callback(
      [&](const std::string& msg) { events.push_back(msg); });

  net::Envelope response;
  ASSERT_NO_THROW(response =
                      relay.relay_analysis(series, 32, server, kMacKey));
  EXPECT_TRUE(relay.timing().local_fallback);
  EXPECT_EQ(server.requests_processed(), 0u);  // cloud never reached
  // The fallback result is a genuine analysis of the same series.
  EXPECT_EQ(response.type, net::MessageType::kAnalysisResult);
  const auto report = core::PeakReport::deserialize(response.payload);
  EXPECT_EQ(report.reference_peak_count(), 2u);
  EXPECT_GT(relay.timing().analysis_s, 0.0);
  bool announced = false;
  for (const auto& e : events)
    announced |= e.find("analyzing locally") != std::string::npos;
  EXPECT_TRUE(announced);
}

TEST(PhoneRelay, LossyAuthThrowsWhenBudgetExhausted) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  auto config = lossy_config(1.0);
  config.reliable.retry_budget = 2;
  PhoneRelay relay(config);
  EXPECT_THROW((void)relay.relay_auth(dip_series(1), 33, 1.0, server, kMacKey),
               net::TransportError);
}

TEST(PhoneRelay, AuthProgressReportsDownload) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  PhoneRelay relay;
  std::vector<std::string> events;
  relay.set_progress_callback(
      [&](const std::string& msg) { events.push_back(msg); });
  (void)relay.relay_auth(dip_series(1), 34, 1.0, server, kMacKey);
  bool download_reported = false;
  for (const auto& e : events)
    download_reported |= e == "downloading auth decision";
  EXPECT_TRUE(download_reported);
  EXPECT_EQ(events.back(), "authentication complete");
}

TEST(PhoneRelay, QualityRejectionArrivesAsStructuredError) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  // A clipped acquisition: the relay still completes the round trip, and
  // the client can read the machine-readable reason from the envelope.
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(450.0, std::vector<double>(5000, 2.5));
  PhoneRelay relay;
  const auto response = relay.relay_analysis(series, 41, server, kMacKey);
  EXPECT_EQ(response.type, net::MessageType::kError);
  const auto error = net::ErrorPayload::deserialize(response.payload);
  EXPECT_EQ(error.code, net::ErrorCode::kQualityRejected);
  EXPECT_EQ(error.subcode,
            static_cast<std::uint8_t>(cloud::QualityReason::kSaturated));
}

TEST(PhoneRelay, UnprovisionedDeviceArrivesAsError) {
  auto server = make_server();
  server.provision_device(RelayConfig{}.device_id, kMacKey);
  RelayConfig config;
  config.device_id = 99;  // never provisioned
  PhoneRelay relay(config);
  const auto response = relay.relay_analysis(dip_series(1), 1, server, kMacKey);
  EXPECT_EQ(response.type, net::MessageType::kError);
  const auto error = net::ErrorPayload::deserialize(response.payload);
  EXPECT_EQ(error.code, net::ErrorCode::kUnknownDevice);
}

// --- Session-plane (EV2-style) relay tests ----------------------------

core::Controller make_controller(std::uint64_t seed = 11) {
  core::KeyParams key_params;
  key_params.num_electrodes = 9;
  key_params.period_s = 4.0;
  return core::Controller(key_params, sim::standard_design(9),
                          core::DiagnosticProfile::cd4_staging(), seed);
}

// AcquireFn that ignores the control trace and hands back a clean
// acquisition — these tests exercise the session plane, not the sensor.
AcquireFn clean_acquire() {
  return [](std::span<const sim::ControlSegment>, double, std::size_t) {
    return dip_series(3);
  };
}

TEST(PhoneRelay, EstablishSessionDerivesMatchingKeys) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);

  ASSERT_TRUE(relay.establish_session(controller, 100, server));
  auto* crypto = controller.session_crypto();
  ASSERT_NE(crypto, nullptr);
  EXPECT_TRUE(crypto->active());
  const auto server_key =
      server.sessions().session_key(relay.config().device_id, 100);
  ASSERT_TRUE(server_key.has_value());
  EXPECT_EQ(*server_key, crypto->session_mac_key());
}

TEST(PhoneRelay, EstablishSessionFailsWithoutArmedCrypto) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  EXPECT_FALSE(relay.establish_session(controller, 100, server));
}

TEST(PhoneRelay, SessionPlaneRelayStampsCounters) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);
  ASSERT_TRUE(relay.establish_session(controller, 100, server));
  auto* crypto = controller.session_crypto();

  const auto series = dip_series(3);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const auto response =
        relay.relay_analysis(series, /*session_id=*/0, server, {}, crypto);
    ASSERT_EQ(response.type, net::MessageType::kAnalysisResult);
    EXPECT_EQ(response.counter, i);
    EXPECT_EQ(response.session_id, 100u);
    EXPECT_TRUE(net::verify_envelope(response, crypto->session_mac_key()));
  }
}

TEST(PhoneRelay, SessionLossSurfacesAuthRequired) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);
  ASSERT_TRUE(relay.establish_session(controller, 100, server));
  auto* crypto = controller.session_crypto();

  // The server forgets the session (restart / rotation)...
  server.sessions().drop(relay.config().device_id);
  const auto response =
      relay.relay_analysis(dip_series(3), 0, server, {}, crypto);
  ASSERT_EQ(response.type, net::MessageType::kError);
  EXPECT_EQ(net::ErrorPayload::deserialize(response.payload).code,
            net::ErrorCode::kAuthRequired);

  // ...and a fresh handshake restores service with counters reset.
  crypto->invalidate();
  ASSERT_TRUE(relay.establish_session(controller, 101, server));
  const auto again = relay.relay_analysis(dip_series(3), 0, server, {}, crypto);
  EXPECT_EQ(again.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(again.counter, 1u);
}

TEST(PhoneRelay, DiagnosticSessionRidesSessionPlane) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);

  const auto outcome = relay.run_diagnostic_session(
      controller, 20.0, clean_acquire(), /*session_base_id=*/100, server,
      kMacKey);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_FALSE(outcome.degraded);
  // One handshake, and the analysis rode the negotiated session with a
  // MAC under the derived key, not the static kMacKey.
  EXPECT_EQ(server.stats().handshakes_completed, 1u);
  EXPECT_EQ(outcome.last_response.counter, 1u);
  auto* crypto = controller.session_crypto();
  ASSERT_NE(crypto, nullptr);
  EXPECT_TRUE(
      net::verify_envelope(outcome.last_response, crypto->session_mac_key()));
}

// Mid-session re-key: the server drops the session between the
// handshake and the first command (the AcquireFn is the hook that runs
// in exactly that gap). The loop must re-handshake and resend instead
// of failing the attempt.
TEST(PhoneRelay, DiagnosticSessionRekeysAfterServerSessionLoss) {
  auto server = make_server();
  auto controller = make_controller();
  PhoneRelay relay;
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);

  bool dropped = false;
  const AcquireFn acquire =
      [&](std::span<const sim::ControlSegment>, double, std::size_t) {
        if (!dropped) {
          server.sessions().drop(relay.config().device_id);
          dropped = true;
        }
        return dip_series(3);
      };

  const auto outcome = relay.run_diagnostic_session(
      controller, 20.0, acquire, /*session_base_id=*/100, server, kMacKey);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(server.stats().handshakes_completed, 2u);
  // The resend restarted counters under the re-keyed session.
  EXPECT_EQ(outcome.last_response.counter, 1u);
  auto* crypto = controller.session_crypto();
  EXPECT_TRUE(
      net::verify_envelope(outcome.last_response, crypto->session_mac_key()));
}

// ARQ retransmissions on lossy links must never trip the anti-replay
// window: a retransmitted command finds the cached response; only a
// *new* envelope reusing a burned counter is rejected.
TEST(PhoneRelay, SessionPlaneSurvivesLossyTransport) {
  auto server = make_server();
  auto controller = make_controller();
  auto config = lossy_config(0.08);
  config.reliable.retry_budget = 400;
  PhoneRelay relay(config);
  server.provision_device(relay.config().device_id, kMacKey);
  controller.enable_session_crypto(relay.config().device_id, kMacKey);

  ASSERT_TRUE(relay.establish_session(controller, 100, server));
  auto* crypto = controller.session_crypto();
  const auto response =
      relay.relay_analysis(dip_series(3), 0, server, {}, crypto);
  ASSERT_EQ(response.type, net::MessageType::kAnalysisResult);
  EXPECT_EQ(response.counter, 1u);
  EXPECT_EQ(server.stats().counter_rejections, 0u);
}

TEST(PhoneRelay, Profiles) {
  EXPECT_DOUBLE_EQ(computer_profile().slowdown, 1.0);
  EXPECT_GT(nexus5_profile().slowdown, 3.0);
  EXPECT_NEAR(nexus5_profile().scale(0.452), 1.554, 0.06);
}

}  // namespace
}  // namespace medsen::phone
