#include "phone/app.h"

#include <gtest/gtest.h>

namespace medsen::phone {
namespace {

TEST(AppSession, HappyPath) {
  AppSession session;
  EXPECT_EQ(session.state(), AppState::kIdle);
  EXPECT_EQ(session.handle(AppEvent::kDongleAttached),
            AppState::kConnected);
  EXPECT_EQ(session.handle(AppEvent::kTestStarted), AppState::kAcquiring);
  EXPECT_EQ(session.handle(AppEvent::kAcquisitionDone),
            AppState::kUploading);
  EXPECT_EQ(session.handle(AppEvent::kUploadDone),
            AppState::kAwaitingResult);
  EXPECT_EQ(session.handle(AppEvent::kResultReceived), AppState::kComplete);
}

TEST(AppSession, IllegalEventGoesToError) {
  AppSession session;
  EXPECT_EQ(session.handle(AppEvent::kResultReceived), AppState::kError);
}

TEST(AppSession, FailureLegalAnywhere) {
  AppSession session;
  (void)session.handle(AppEvent::kDongleAttached);
  (void)session.handle(AppEvent::kTestStarted);
  EXPECT_EQ(session.handle(AppEvent::kFailure), AppState::kError);
}

TEST(AppSession, DetachMidSessionIsError) {
  AppSession session;
  (void)session.handle(AppEvent::kDongleAttached);
  (void)session.handle(AppEvent::kTestStarted);
  EXPECT_EQ(session.handle(AppEvent::kDongleDetached), AppState::kError);
}

TEST(AppSession, DetachAfterCompleteIsClean) {
  AppSession session;
  (void)session.handle(AppEvent::kDongleAttached);
  (void)session.handle(AppEvent::kTestStarted);
  (void)session.handle(AppEvent::kAcquisitionDone);
  (void)session.handle(AppEvent::kUploadDone);
  (void)session.handle(AppEvent::kResultReceived);
  EXPECT_EQ(session.handle(AppEvent::kDongleDetached), AppState::kIdle);
}

TEST(AppSession, ResetRecoversFromError) {
  AppSession session;
  (void)session.handle(AppEvent::kFailure);
  session.reset();
  EXPECT_EQ(session.state(), AppState::kIdle);
  EXPECT_EQ(session.handle(AppEvent::kDongleAttached),
            AppState::kConnected);
}

TEST(AppSession, ListenerSeesTransitions) {
  AppSession session;
  std::vector<AppState> seen;
  session.set_listener(
      [&](AppState state, const std::string&) { seen.push_back(state); });
  (void)session.handle(AppEvent::kDongleAttached);
  (void)session.handle(AppEvent::kTestStarted);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], AppState::kConnected);
  EXPECT_EQ(seen[1], AppState::kAcquiring);
}

TEST(AppSession, LogRecordsHistory) {
  AppSession session;
  (void)session.handle(AppEvent::kDongleAttached);
  (void)session.handle(AppEvent::kFailure);
  ASSERT_EQ(session.log().size(), 2u);
  EXPECT_NE(session.log()[0].find("connected"), std::string::npos);
  EXPECT_NE(session.log()[1].find("error"), std::string::npos);
}

TEST(AppSession, StateNames) {
  EXPECT_STREQ(to_string(AppState::kIdle), "idle");
  EXPECT_STREQ(to_string(AppState::kComplete), "complete");
  EXPECT_STREQ(to_string(AppEvent::kTestStarted), "test-started");
}

}  // namespace
}  // namespace medsen::phone
