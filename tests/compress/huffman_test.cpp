#include "compress/huffman.h"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "crypto/chacha20.h"

namespace medsen::compress {
namespace {

TEST(Huffman, LengthsSatisfyKraft) {
  std::vector<std::uint64_t> freqs = {100, 50, 25, 12, 6, 3, 1, 1};
  const auto lengths = huffman_code_lengths(freqs);
  double kraft = 0.0;
  for (auto len : lengths)
    if (len > 0) kraft += std::pow(2.0, -static_cast<double>(len));
  EXPECT_NEAR(kraft, 1.0, 1e-12);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 10, 10, 10};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_LT(lengths[0], lengths[1]);
}

TEST(Huffman, ZeroFrequencySymbolsAbsent) {
  std::vector<std::uint64_t> freqs = {5, 0, 5};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[1], 0);
  EXPECT_GT(lengths[0], 0);
}

TEST(Huffman, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freqs = {0, 7, 0};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[1], 1);
}

TEST(Huffman, AllZeroFrequencies) {
  std::vector<std::uint64_t> freqs = {0, 0, 0};
  const auto lengths = huffman_code_lengths(freqs);
  for (auto len : lengths) EXPECT_EQ(len, 0);
}

TEST(Huffman, RespectsMaxCodeLength) {
  // Fibonacci-like frequencies force deep trees; lengths must be capped.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs);
  for (auto len : lengths) EXPECT_LE(len, kMaxCodeLength);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<std::uint64_t> freqs = {50, 30, 10, 5, 3, 2};
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder encoder(build_codes(lengths));
  const HuffmanDecoder decoder(lengths);

  crypto::ChaChaRng rng(17);
  std::vector<std::uint16_t> symbols;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const auto s = static_cast<std::uint16_t>(rng.uniform(6));
    symbols.push_back(s);
    encoder.encode(w, s);
  }
  const auto buf = w.finish();
  BitReader r(buf);
  for (auto expected : symbols) EXPECT_EQ(decoder.decode(r), expected);
}

TEST(Huffman, EncodingAbsentSymbolThrows) {
  std::vector<std::uint64_t> freqs = {5, 0, 5};
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder encoder(build_codes(lengths));
  BitWriter w;
  EXPECT_THROW(encoder.encode(w, 1), std::runtime_error);
}

TEST(Huffman, CompressionBeatsFixedWidth) {
  // Skewed distribution: entropy ~1.16 bits << 3 fixed bits.
  std::vector<std::uint64_t> freqs = {800, 100, 50, 25, 12, 6, 4, 3};
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder encoder(build_codes(lengths));
  BitWriter w;
  for (std::size_t s = 0; s < freqs.size(); ++s)
    for (std::uint64_t i = 0; i < freqs[s]; ++i)
      encoder.encode(w, static_cast<std::uint16_t>(s));
  const std::uint64_t total =
      std::accumulate(freqs.begin(), freqs.end(), std::uint64_t{0});
  EXPECT_LT(w.bit_count(), total * 2);  // < 2 bits/symbol average
}

TEST(Huffman, DecoderRejectsOverlongLengths) {
  std::vector<std::uint8_t> lengths = {16};
  EXPECT_THROW(HuffmanDecoder{lengths}, std::invalid_argument);
}

}  // namespace
}  // namespace medsen::compress
