#include "compress/bitio.h"

#include <gtest/gtest.h>

#include "crypto/chacha20.h"

namespace medsen::compress {
namespace {

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<int> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  for (int b : bits) w.put(static_cast<std::uint32_t>(b), 1);
  const auto buf = w.finish();
  BitReader r(buf);
  for (int b : bits) EXPECT_EQ(r.bit(), static_cast<std::uint32_t>(b));
}

TEST(BitIo, LsbFirstWithinByte) {
  BitWriter w;
  w.put(1, 1);  // bit 0 of first byte
  w.put(0, 1);
  w.put(1, 1);  // bit 2
  const auto buf = w.finish();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b00000101);
}

TEST(BitIo, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.put(0x5, 3);
  w.put(0xABC, 12);
  w.put(0xDEADBEEF, 32);
  w.put(0x1, 1);
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.get(3), 0x5u);
  EXPECT_EQ(r.get(12), 0xABCu);
  EXPECT_EQ(r.get(32), 0xDEADBEEFu);
  EXPECT_EQ(r.get(1), 0x1u);
}

TEST(BitIo, MasksExtraHighBits) {
  BitWriter w;
  w.put(0xFF, 4);  // only low 4 bits kept
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.get(4), 0xFu);
  EXPECT_EQ(r.get(4), 0u);  // padding
}

TEST(BitIo, CountTooLargeThrows) {
  BitWriter w;
  EXPECT_THROW(w.put(0, 33), std::invalid_argument);
  const std::vector<std::uint8_t> buf = {0};
  BitReader r(buf);
  EXPECT_THROW(r.get(33), std::invalid_argument);
}

TEST(BitIo, ReadPastEndThrows) {
  const std::vector<std::uint8_t> buf = {0xFF};
  BitReader r(buf);
  EXPECT_EQ(r.get(8), 0xFFu);
  EXPECT_THROW(r.get(1), std::out_of_range);
}

TEST(BitIo, BitCountTracksWrites) {
  BitWriter w;
  w.put(0, 5);
  w.put(0, 9);
  EXPECT_EQ(w.bit_count(), 14u);
}

TEST(BitIo, RandomizedRoundTrip) {
  crypto::ChaChaRng rng(21);
  std::vector<std::pair<std::uint32_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    const unsigned count = 1 + rng.uniform(32);
    const std::uint32_t value =
        count == 32 ? rng.next_u32() : rng.next_u32() & ((1u << count) - 1);
    fields.emplace_back(value, count);
    w.put(value, count);
  }
  const auto buf = w.finish();
  BitReader r(buf);
  for (const auto& [value, count] : fields) EXPECT_EQ(r.get(count), value);
}

}  // namespace
}  // namespace medsen::compress
