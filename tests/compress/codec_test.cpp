#include "compress/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/chacha20.h"
#include "sim/acquisition.h"
#include "util/csv.h"

namespace medsen::compress {
namespace {

TEST(Codec, EmptyRoundTrip) {
  const auto packed = compress({});
  EXPECT_TRUE(decompress(packed).empty());
}

TEST(Codec, TextRoundTrip) {
  const std::string text =
      "time,ch500000\n0,1.0001\n0.0022,0.9998\n0.0044,1.0002\n";
  const auto packed = compress_string(text);
  EXPECT_EQ(decompress_string(packed), text);
}

TEST(Codec, CsvLikeDataCompressesWell) {
  // The paper's 600 MB -> 240 MB (2.5x) claim is on CSV sensor dumps;
  // structurally similar data must compress by at least 2x here.
  std::string csv = "time,ch500000,ch1000000\n";
  crypto::ChaChaRng rng(3);
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(i * 0.00222);
    csv += ",0.99";
    csv += std::to_string(rng.uniform(1000));
    csv += ",1.00";
    csv += std::to_string(rng.uniform(100));
    csv += "\n";
  }
  const auto packed = compress_string(csv);
  EXPECT_GT(compression_ratio(csv.size(), packed.size()), 2.0);
  EXPECT_EQ(decompress_string(packed), csv);
}

TEST(Codec, RandomDataRoundTrips) {
  crypto::ChaChaRng rng(7);
  std::vector<std::uint8_t> data(10000);
  rng.fill(data);
  const auto packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
}

TEST(Codec, AllByteValuesRoundTrip) {
  std::vector<std::uint8_t> data;
  for (int rep = 0; rep < 5; ++rep)
    for (int b = 0; b < 256; ++b)
      data.push_back(static_cast<std::uint8_t>(b));
  const auto packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
}

TEST(Codec, BadMagicThrows) {
  auto packed = compress_string("hello world hello world");
  packed[0] ^= 0xFF;
  EXPECT_THROW(decompress(packed), std::runtime_error);
}

TEST(Codec, CorruptedPayloadDetected) {
  auto packed = compress_string(std::string(1000, 'q') + "tail");
  // Flip a byte in the entropy-coded payload (past the 16-byte header).
  packed[packed.size() - 3] ^= 0x10;
  EXPECT_THROW(decompress(packed), std::runtime_error);
}

TEST(Codec, TruncatedInputThrows) {
  const auto packed = compress_string("some reasonably sized content here");
  const std::span<const std::uint8_t> cut(packed.data(), packed.size() / 2);
  EXPECT_THROW(decompress(cut), std::runtime_error);
}

TEST(Codec, SingleByteRoundTrip) {
  const std::vector<std::uint8_t> data = {42};
  EXPECT_EQ(decompress(compress(data)), data);
}

TEST(Codec, RatioHelper) {
  EXPECT_DOUBLE_EQ(compression_ratio(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 0), 0.0);
}

class CodecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecSizeSweep, RoundTripAtManySizes) {
  crypto::ChaChaRng rng(GetParam() + 100);
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data)
    b = static_cast<std::uint8_t>(rng.uniform(16));  // compressible
  const auto packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecSizeSweep,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 255, 256,
                                           1000, 65536));

TEST(Codec, TrailingBytesRejected) {
  auto packed = compress_string("strict containers end where they end");
  packed.push_back(0x00);
  EXPECT_THROW(decompress(packed), std::runtime_error);
  packed.pop_back();
  EXPECT_NO_THROW(decompress(packed));
}

TEST(Codec, HostileOriginalSizeDoesNotPreallocate) {
  // Corrupt the header's original-size field to 2^60: the decoder must
  // fail with size/CRC mismatch, not attempt an exabyte reserve().
  auto packed = compress_string("header fields are attacker-controlled");
  for (std::size_t i = 4; i < 12; ++i) packed[i] = 0xFF;
  EXPECT_THROW(decompress(packed), std::runtime_error);
}

TEST(Codec, BitFlipSweepNeverCrashes) {
  // Any single-bit corruption anywhere in the container must surface as
  // the structured corruption error, never UB or a crash.
  const auto packed = compress_string("bit flip sweep over the container");
  for (std::size_t bit = 0; bit < packed.size() * 8; ++bit) {
    auto corrupted = packed;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const auto out = decompress(corrupted);
      // A flip that survives CRC+size checks must decode identically.
      EXPECT_EQ(out.size(), std::string("bit flip sweep over the container")
                                .size());
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace medsen::compress
