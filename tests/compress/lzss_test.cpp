#include "compress/lzss.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/chacha20.h"

namespace medsen::compress {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lzss, EmptyInput) {
  EXPECT_TRUE(lzss_compress({}).empty());
  EXPECT_TRUE(lzss_decompress({}).empty());
}

TEST(Lzss, RoundTripText) {
  const auto data = bytes_of(
      "abracadabra abracadabra abracadabra — repetition compresses well");
  const auto tokens = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(tokens), data);
}

TEST(Lzss, RepetitiveInputProducesMatches) {
  const auto data = bytes_of(std::string(1000, 'x'));
  const auto tokens = lzss_compress(data);
  EXPECT_LT(tokens.size(), 20u);  // run collapses to a few back-references
  std::size_t matches = 0;
  for (const auto& t : tokens)
    if (t.is_match) ++matches;
  EXPECT_GT(matches, 0u);
  EXPECT_EQ(lzss_decompress(tokens), data);
}

TEST(Lzss, IncompressibleInputAllLiterals) {
  crypto::ChaChaRng rng(5);
  std::vector<std::uint8_t> data(256);
  rng.fill(data);
  const auto tokens = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(tokens), data);
}

TEST(Lzss, OverlappingMatchRle) {
  // "aaaa..." exercises the overlapping-copy semantics (distance 1,
  // length > 1).
  const auto data = bytes_of("a" + std::string(300, 'a'));
  const auto tokens = lzss_compress(data);
  bool has_overlap = false;
  for (const auto& t : tokens)
    if (t.is_match && t.distance < t.length) has_overlap = true;
  EXPECT_TRUE(has_overlap);
  EXPECT_EQ(lzss_decompress(tokens), data);
}

TEST(Lzss, MatchLengthRespectsCap) {
  const auto data = bytes_of(std::string(5000, 'z'));
  const auto tokens = lzss_compress(data);
  for (const auto& t : tokens) {
    if (t.is_match) {
      EXPECT_GE(t.length, kMinMatch);
      EXPECT_LE(t.length, kMaxMatch);
      EXPECT_GE(t.distance, 1u);
      EXPECT_LE(t.distance, kWindowSize);
    }
  }
}

TEST(Lzss, InvalidDistanceThrows) {
  std::vector<Token> tokens(1);
  tokens[0].is_match = true;
  tokens[0].length = 3;
  tokens[0].distance = 1;  // nothing in the window yet
  EXPECT_THROW(lzss_decompress(tokens), std::runtime_error);
}

TEST(Lzss, InvalidLengthThrows) {
  std::vector<Token> tokens(2);
  tokens[0].is_match = false;
  tokens[0].literal = 'a';
  tokens[1].is_match = true;
  tokens[1].length = 1;  // below kMinMatch
  tokens[1].distance = 1;
  EXPECT_THROW(lzss_decompress(tokens), std::runtime_error);
}

TEST(Lzss, LazyMatchingNotWorseThanGreedy) {
  const auto data = bytes_of(
      "abcde_bcdef_abcdef_abcdef repeated abcdef_abcdef patterns");
  LzssConfig lazy;
  lazy.lazy = true;
  LzssConfig greedy;
  greedy.lazy = false;
  const auto lazy_tokens = lzss_compress(data, lazy);
  const auto greedy_tokens = lzss_compress(data, greedy);
  EXPECT_EQ(lzss_decompress(lazy_tokens), data);
  EXPECT_EQ(lzss_decompress(greedy_tokens), data);
  EXPECT_LE(lazy_tokens.size(), greedy_tokens.size() + 2);
}

class LzssRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LzssRandomRoundTrip, StructuredRandomData) {
  crypto::ChaChaRng rng(GetParam());
  // Mix of random bytes and repeated phrases, CSV-like.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 200; ++i) {
    const auto phrase = bytes_of("0.99" + std::to_string(rng.uniform(100)) +
                                 ",1.00" + std::to_string(rng.uniform(10)) +
                                 "\n");
    data.insert(data.end(), phrase.begin(), phrase.end());
  }
  const auto tokens = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(tokens), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace medsen::compress
