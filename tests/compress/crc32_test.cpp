#include "compress/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace medsen::compress {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, CheckValue123456789) {
  // The standard CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  std::uint32_t state = crc32_init();
  for (char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    state = crc32_update(state, std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(crc32_final(state), crc32(as_bytes(msg)));
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::vector<std::uint8_t> data(100, 0x55);
  const auto original = crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

TEST(Crc32, OrderSensitive) {
  const std::vector<std::uint8_t> ab = {'a', 'b'};
  const std::vector<std::uint8_t> ba = {'b', 'a'};
  EXPECT_NE(crc32(ab), crc32(ba));
}

}  // namespace
}  // namespace medsen::compress
