#include <gtest/gtest.h>

#include <vector>

#include "crypto/chacha20.h"
#include "util/stats.h"

namespace medsen::crypto {
namespace {

TEST(ChaChaRng, DeterministicForSameSeed) {
  ChaChaRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(ChaChaRng, DifferentSeedsDiverge) {
  ChaChaRng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 2);
}

TEST(ChaChaRng, UniformRespectsBound) {
  ChaChaRng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(ChaChaRng, UniformBoundOneAlwaysZero) {
  ChaChaRng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(ChaChaRng, UniformDoubleInUnitInterval) {
  ChaChaRng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(ChaChaRng, UniformIsRoughlyUniform) {
  ChaChaRng rng(3);
  std::vector<std::size_t> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (auto count : buckets) {
    EXPECT_GT(count, n / 10 - 600);
    EXPECT_LT(count, n / 10 + 600);
  }
}

TEST(ChaChaRng, NormalMomentsMatch) {
  ChaChaRng rng(5);
  std::vector<double> xs;
  xs.reserve(50000);
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(util::mean(xs), 10.0, 0.05);
  EXPECT_NEAR(util::stddev(xs), 2.0, 0.05);
}

TEST(ChaChaRng, PoissonMeanMatchesSmallLambda) {
  ChaChaRng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(ChaChaRng, PoissonMeanMatchesLargeLambda) {
  ChaChaRng rng(10);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.5);
}

TEST(ChaChaRng, PoissonZeroLambdaIsZero) {
  ChaChaRng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(ChaChaRng, BernoulliFrequency) {
  ChaChaRng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(ChaChaRng, ByteSeedConstructor) {
  const std::vector<std::uint8_t> seed = {1, 2, 3};
  ChaChaRng a(seed), b(seed);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace medsen::crypto
