#include "crypto/cmac.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/constant_time.h"

namespace medsen::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    bytes.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return bytes;
}

std::string hex_of(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0f]);
  }
  return out;
}

// The RFC 4493 key and message shared by all four example vectors.
const std::string kRfcKey = "2b7e151628aed2a6abf7158809cf4f3c";
const std::string kRfcMessage =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

TEST(Cmac, Rfc4493EmptyMessage) {
  const auto tag = aes_cmac(from_hex(kRfcKey), {});
  EXPECT_EQ(hex_of(tag), "bb1d6929e95937287fa37d129b756746");
}

// One full block: the message is XORed with subkey K1 — pins the K1 path
// of the RFC's subkey generation.
TEST(Cmac, Rfc4493OneBlock) {
  const auto msg = from_hex(kRfcMessage.substr(0, 32));
  const auto tag = aes_cmac(from_hex(kRfcKey), msg);
  EXPECT_EQ(hex_of(tag), "070a16b46b4d4144f79bdd9dd04a287c");
}

// 40 bytes: a ragged final block, padded and XORed with K2.
TEST(Cmac, Rfc4493FortyBytes) {
  const auto msg = from_hex(kRfcMessage.substr(0, 80));
  const auto tag = aes_cmac(from_hex(kRfcKey), msg);
  EXPECT_EQ(hex_of(tag), "dfa66747de9ae63030ca32611497c827");
}

TEST(Cmac, Rfc4493FourBlocks) {
  const auto tag = aes_cmac(from_hex(kRfcKey), from_hex(kRfcMessage));
  EXPECT_EQ(hex_of(tag), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, RejectsNon16ByteKey) {
  const std::vector<std::uint8_t> short_key(8, 0x11);
  EXPECT_THROW(aes_cmac(short_key, {}), std::invalid_argument);
  const std::vector<std::uint8_t> long_key(24, 0x22);
  EXPECT_THROW(aes_cmac(long_key, {}), std::invalid_argument);
}

TEST(Kdf, DeterministicAndLabelSeparated) {
  const auto key = from_hex(kRfcKey);
  const std::vector<std::uint8_t> context = {1, 2, 3, 4};
  const auto a = kdf_cmac(key, "medsen-a", context, 32);
  const auto b = kdf_cmac(key, "medsen-a", context, 32);
  const auto c = kdf_cmac(key, "medsen-b", context, 32);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 32u);
}

TEST(Kdf, ContextSeparated) {
  const auto key = from_hex(kRfcKey);
  const std::vector<std::uint8_t> ctx_a = {1, 2, 3};
  const std::vector<std::uint8_t> ctx_b = {1, 2, 4};
  EXPECT_NE(kdf_cmac(key, "medsen-x", ctx_a, 16),
            kdf_cmac(key, "medsen-x", ctx_b, 16));
}

// A multi-block output's prefix must NOT equal the shorter derivation of
// the same label/context: the length is bound into every PRF block, so
// truncation of a long key can never collide with a short one.
TEST(Kdf, LengthIsBoundIntoDerivation) {
  const auto key = from_hex(kRfcKey);
  const std::vector<std::uint8_t> context = {9, 9, 9};
  const auto short_key = kdf_cmac(key, "medsen-l", context, 16);
  const auto long_key = kdf_cmac(key, "medsen-l", context, 48);
  EXPECT_EQ(long_key.size(), 48u);
  const std::vector<std::uint8_t> prefix(long_key.begin(),
                                         long_key.begin() + 16);
  EXPECT_NE(prefix, short_key);
}

TEST(Kdf, RejectsDegenerateLengths) {
  const auto key = from_hex(kRfcKey);
  EXPECT_THROW(kdf_cmac(key, "l", {}, 0), std::invalid_argument);
  EXPECT_THROW(kdf_cmac(key, "l", {}, 255 * 16 + 1), std::invalid_argument);
}

// Lengths above 255 * 8 bytes used to overflow the KDF's 8-bit length
// field; the field is 16-bit now, and the largest legal output pins it.
TEST(Kdf, MaxLengthDerives) {
  const auto key = from_hex(kRfcKey);
  const auto out = kdf_cmac(key, "l", {}, 255 * 16);
  EXPECT_EQ(out.size(), 255u * 16u);
}

TEST(Diversify, PerDeviceAndPerEpoch) {
  const auto master = from_hex(kRfcKey);
  const auto d1e0 = diversify_device_key(master, 1, 0);
  const auto d2e0 = diversify_device_key(master, 2, 0);
  const auto d1e1 = diversify_device_key(master, 1, 1);
  EXPECT_EQ(d1e0.size(), 16u);
  EXPECT_NE(d1e0, d2e0);
  EXPECT_NE(d1e0, d1e1);
  EXPECT_EQ(d1e0, diversify_device_key(master, 1, 0));
}

TEST(NormalizeKey, IdentityFor16Bytes) {
  const auto key = from_hex(kRfcKey);
  EXPECT_EQ(normalize_cmac_key(key), key);
}

TEST(NormalizeKey, HashesFreeFormLegacyKeys) {
  const std::vector<std::uint8_t> legacy = {'s', 'e', 'c', 'r', 'e', 't'};
  const auto normalized = normalize_cmac_key(legacy);
  EXPECT_EQ(normalized.size(), 16u);
  EXPECT_NE(normalized, legacy);
  EXPECT_EQ(normalized, normalize_cmac_key(legacy));
  // And the result is CMAC-usable.
  EXPECT_NO_THROW(aes_cmac(normalized, {}));
}

// The non-identity path is SHA-256-truncate-to-16, so every edge case
// below is pinned against published SHA-256 vectors: a change to the
// normalization breaks interop with already-personalized devices, and
// these tests make that change impossible to miss.

TEST(NormalizeKey, EmptyKeyPinnedToSha256Prefix) {
  // SHA-256("") = e3b0c442...; the first 16 bytes are the normalized key.
  const auto normalized = normalize_cmac_key({});
  EXPECT_EQ(hex_of(normalized), "e3b0c44298fc1c149afbf4c8996fb924");
  EXPECT_NO_THROW(aes_cmac(normalized, {}));
}

TEST(NormalizeKey, ExactlySixteenBytesIsUntouched) {
  // Identity must hold for *any* 16-byte value, not just the RFC key —
  // all-zero and all-ff probe the boundary encodings.
  const std::vector<std::uint8_t> zeros(16, 0x00);
  const std::vector<std::uint8_t> ones(16, 0xff);
  EXPECT_EQ(normalize_cmac_key(zeros), zeros);
  EXPECT_EQ(normalize_cmac_key(ones), ones);
}

TEST(NormalizeKey, SeventeenBytesHashesPinned) {
  // One byte past the identity boundary must hash, not truncate:
  // SHA-256(17 x 00) = 0a88111852095cae045340ea1f0b2799...
  const std::vector<std::uint8_t> key(17, 0x00);
  const auto normalized = normalize_cmac_key(key);
  EXPECT_EQ(hex_of(normalized), "0a88111852095cae045340ea1f0b2799");
  // In particular it is NOT the first 16 bytes of the input.
  EXPECT_NE(normalized, std::vector<std::uint8_t>(16, 0x00));
}

TEST(NormalizeKey, LongKeyPinnedToSha256Prefix) {
  // SHA-256("The quick brown fox jumps over the lazy dog") =
  // d7a8fbb307d7809469ca9abcb0082e4f... (43-byte input).
  const std::string phrase = "The quick brown fox jumps over the lazy dog";
  const std::vector<std::uint8_t> key(phrase.begin(), phrase.end());
  const auto normalized = normalize_cmac_key(key);
  EXPECT_EQ(hex_of(normalized), "d7a8fbb307d7809469ca9abcb0082e4f");
}

TEST(SessionKeys, BothSidesDeriveTheSameKey) {
  const auto device_key = from_hex(kRfcKey);
  const std::vector<std::uint8_t> rnd_a(16, 0xa1);
  const std::vector<std::uint8_t> rnd_b(16, 0xb2);
  const auto mac_key = derive_session_mac_key(device_key, rnd_a, rnd_b);
  EXPECT_EQ(mac_key.size(), 32u);
  EXPECT_EQ(mac_key, derive_session_mac_key(device_key, rnd_a, rnd_b));
  // Swapped nonces derive a different key — direction is bound in.
  EXPECT_NE(mac_key, derive_session_mac_key(device_key, rnd_b, rnd_a));
}

TEST(SessionKeys, ProofNeverDoublesAsKeyMaterial) {
  const auto device_key = from_hex(kRfcKey);
  const std::vector<std::uint8_t> rnd_a(16, 0x01);
  const std::vector<std::uint8_t> rnd_b(16, 0x02);
  const auto proof = session_proof(device_key, rnd_a, rnd_b);
  const auto mac_key = derive_session_mac_key(device_key, rnd_a, rnd_b);
  const std::vector<std::uint8_t> key_prefix(mac_key.begin(),
                                             mac_key.begin() + proof.size());
  EXPECT_FALSE(constant_time_equal(proof, key_prefix));
}

// Free-form legacy keys must be handshake-capable: the session helpers
// normalize internally instead of throwing on non-16-byte keys.
TEST(SessionKeys, LegacyFreeFormKeysWork) {
  const std::vector<std::uint8_t> legacy = {'d', 'e', 'v', '-', '4', '2'};
  const std::vector<std::uint8_t> rnd_a(16, 0x0a);
  const std::vector<std::uint8_t> rnd_b(16, 0x0b);
  EXPECT_EQ(derive_session_mac_key(legacy, rnd_a, rnd_b).size(), 32u);
  EXPECT_NO_THROW(session_proof(legacy, rnd_a, rnd_b));
}

TEST(ConstantTime, EqualAndUnequal) {
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {1, 2, 3, 4};
  const std::vector<std::uint8_t> c = {1, 2, 3, 5};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
}

TEST(ConstantTime, LengthMismatchIsFalse) {
  const std::vector<std::uint8_t> a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> b = {1, 2, 3};
  EXPECT_FALSE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(b, a));
}

TEST(ConstantTime, EmptyInputsAreEqual) {
  EXPECT_TRUE(constant_time_equal({}, {}));
}

}  // namespace
}  // namespace medsen::crypto
