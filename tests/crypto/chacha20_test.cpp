#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

namespace medsen::crypto {
namespace {

std::array<std::uint8_t, 32> rfc_key() {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

// RFC 8439 Section 2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  const auto key = rfc_key();
  const std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09,
                                              0x00, 0x00, 0x00, 0x4a,
                                              0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20::block(key, nonce, 1);
  const std::uint8_t expected_head[16] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
      0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(block[i], expected_head[i]) << i;
  const std::uint8_t expected_tail[4] = {0xa2, 0x50, 0x3c, 0x4e};
  for (int i = 0; i < 4; ++i) EXPECT_EQ(block[60 + i], expected_tail[i]) << i;
}

// RFC 8439 Section 2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  const auto key = rfc_key();
  const std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00,
                                              0x00, 0x00, 0x00, 0x4a,
                                              0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key, nonce, 1);
  cipher.apply(data);
  const std::uint8_t expected_head[16] = {
      0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80,
      0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d, 0x69, 0x81};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(data[i], expected_head[i]) << i;
  const std::uint8_t expected_tail[] = {0x87, 0x4d};
  EXPECT_EQ(data[112], expected_tail[0]);
  EXPECT_EQ(data[113], expected_tail[1]);
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const auto key = rfc_key();
  const std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  const auto original = data;
  ChaCha20 enc(key, nonce, 0);
  enc.apply(data);
  EXPECT_NE(data, original);
  ChaCha20 dec(key, nonce, 0);
  dec.apply(data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, KeystreamMatchesApplyOnZeros) {
  const auto key = rfc_key();
  const std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> zeros(200, 0);
  ChaCha20 a(key, nonce, 0);
  a.apply(zeros);
  std::vector<std::uint8_t> stream(200);
  ChaCha20 b(key, nonce, 0);
  b.keystream(stream);
  EXPECT_EQ(zeros, stream);
}

TEST(ChaCha20, DifferentCountersDiffer) {
  const auto key = rfc_key();
  const std::array<std::uint8_t, 12> nonce{};
  const auto b0 = ChaCha20::block(key, nonce, 0);
  const auto b1 = ChaCha20::block(key, nonce, 1);
  EXPECT_NE(b0, b1);
}

}  // namespace
}  // namespace medsen::crypto
