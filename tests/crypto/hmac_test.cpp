#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace medsen::crypto {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, as_bytes("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(as_bytes("Jefe"), as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: 131-byte key (longer than block -> hashed).
TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// Empty key, empty data — the well-known HMAC-SHA256 vector. The cloud
// signs unknown-device error envelopes with an empty key, and an empty
// std::span has a null data() pointer, which once hit memcpy UB inside
// hmac_sha256; this pins the output so the guard can't regress.
TEST(Hmac, EmptyKeyEmptyDataPinned) {
  const auto mac = hmac_sha256({}, {});
  EXPECT_EQ(to_hex(mac),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

TEST(Hmac, EmptyKeyMatchesZeroLengthKey) {
  const std::vector<std::uint8_t> no_bytes;
  const auto from_empty_span = hmac_sha256({}, as_bytes("payload"));
  const auto from_empty_vec = hmac_sha256(no_bytes, as_bytes("payload"));
  EXPECT_TRUE(digest_equal(from_empty_span, from_empty_vec));
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const std::vector<std::uint8_t> k1(16, 1), k2(16, 2);
  const auto m1 = hmac_sha256(k1, as_bytes("payload"));
  const auto m2 = hmac_sha256(k2, as_bytes("payload"));
  EXPECT_FALSE(digest_equal(m1, m2));
}

TEST(Hmac, DigestEqualConstantTimeSemantics) {
  Sha256Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace medsen::crypto
