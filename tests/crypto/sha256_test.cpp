#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace medsen::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  // FIPS 180-4 example: "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
  EXPECT_EQ(to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i)
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()));
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    h.update(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(msg)));
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries must not collide
  // or crash.
  std::vector<std::string> hashes;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u}) {
    hashes.push_back(to_hex(sha256(std::string(len, 'x'))));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i)
    for (std::size_t j = i + 1; j < hashes.size(); ++j)
      EXPECT_NE(hashes[i], hashes[j]);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("abc"), 3));
  (void)h.finish();
  h.reset();
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("abc"), 3));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace medsen::crypto
