#include "crypto/hkdf.h"

#include <gtest/gtest.h>

namespace medsen::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string hex_of(std::span<const std::uint8_t> bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (auto b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

// RFC 5869 Test Case 1.
TEST(Hkdf, Rfc5869Case1) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto salt = from_hex("000102030405060708090a0b0c");
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex_of(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 Test Case 3 (empty salt and info).
TEST(Hkdf, Rfc5869Case3) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(hex_of(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthBounds) {
  const std::vector<std::uint8_t> ikm = {1, 2, 3};
  EXPECT_THROW((void)hkdf({}, ikm, {}, 0), std::invalid_argument);
  EXPECT_THROW((void)hkdf({}, ikm, {}, 255 * 32 + 1),
               std::invalid_argument);
  EXPECT_EQ(hkdf({}, ikm, {}, 255 * 32).size(), 255u * 32u);
}

TEST(Hkdf, DifferentLabelsIndependentKeys) {
  const std::vector<std::uint8_t> ikm = {9, 9, 9};
  const auto a = hkdf_label(ikm, "enc", 32);
  const auto b = hkdf_label(ikm, "mac", 32);
  EXPECT_NE(a, b);
}

TEST(Hkdf, DeterministicAndPrefixConsistent) {
  const std::vector<std::uint8_t> ikm = {1, 2, 3, 4};
  const auto long_out = hkdf_label(ikm, "x", 64);
  const auto short_out = hkdf_label(ikm, "x", 32);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

}  // namespace
}  // namespace medsen::crypto
