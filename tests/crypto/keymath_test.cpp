#include "crypto/keymath.h"

#include <gtest/gtest.h>

namespace medsen::crypto {
namespace {

// The paper's worked example (Section VI-B): 20K cells, 16 electrodes,
// 16 gain levels (4 bits), 16 flow speeds (4 bits)
// -> 20K * (16 + 8*4 + 4) = 20K * 52 = 1,040,000 bits (~1 Mbit, 0.13 MB,
// reported as 0.12 MB).
TEST(KeyMath, PaperWorkedExample) {
  KeySizeParams p;
  p.cells = 20000;
  p.electrodes = 16;
  p.gain_bits = 4;
  p.flow_bits = 4;
  EXPECT_EQ(key_bits_per_cell(p), 52u);
  EXPECT_EQ(total_key_bits(p), 1040000u);
  const double mb = static_cast<double>(total_key_bytes(p)) / 1.0e6;
  EXPECT_NEAR(mb, 0.13, 0.01);
}

TEST(KeyMath, BytesRoundUp) {
  KeySizeParams p;
  p.cells = 1;
  p.electrodes = 1;  // 1 + 0 + 0 = 1 bit
  p.gain_bits = 0;
  p.flow_bits = 0;
  EXPECT_EQ(total_key_bits(p), 1u);
  EXPECT_EQ(total_key_bytes(p), 1u);
}

TEST(KeyMath, ScalesLinearlyWithCells) {
  KeySizeParams p;
  p.cells = 100;
  p.electrodes = 9;
  p.gain_bits = 4;
  p.flow_bits = 4;
  const auto base = total_key_bits(p);
  p.cells = 200;
  EXPECT_EQ(total_key_bits(p), 2 * base);
}

TEST(KeyMath, PeriodicSchemeIsSmaller) {
  KeySizeParams p;
  p.cells = 20000;
  p.electrodes = 16;
  p.gain_bits = 4;
  p.flow_bits = 4;
  // 60 s acquisition, 2 s key periods -> 30 keys of 52 bits = 1560 bits.
  EXPECT_EQ(periodic_key_bits(p, 60.0, 2.0), 30u * 52u);
  EXPECT_LT(periodic_key_bits(p, 60.0, 2.0), total_key_bits(p));
}

TEST(KeyMath, PeriodicCeilsPartialPeriods) {
  KeySizeParams p;
  p.electrodes = 2;
  p.gain_bits = 1;
  p.flow_bits = 1;  // per key: 2 + 1*1 + 1 = 4 bits
  EXPECT_EQ(periodic_key_bits(p, 3.5, 2.0), 2u * 4u);
}

TEST(KeyMath, DegenerateDurationsYieldZero) {
  KeySizeParams p;
  p.electrodes = 4;
  EXPECT_EQ(periodic_key_bits(p, 0.0, 1.0), 0u);
  EXPECT_EQ(periodic_key_bits(p, 1.0, 0.0), 0u);
}

}  // namespace
}  // namespace medsen::crypto
