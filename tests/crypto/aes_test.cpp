#include "crypto/aes.h"

#include <gtest/gtest.h>

#include <array>

namespace medsen::crypto {
namespace {

// FIPS-197 Appendix C.1 AES-128 vector.
TEST(Aes128, Fips197Vector) {
  std::array<std::uint8_t, 16> key;
  std::array<std::uint8_t, 16> block;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    block[i] = static_cast<std::uint8_t>(i * 0x11);  // 00 11 22 ... ff
  }
  const std::array<std::uint8_t, 16> expected = {
      0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
      0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 cipher(key);
  cipher.encrypt_block(block);
  EXPECT_EQ(block, expected);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  std::array<std::uint8_t, 16> key = {1, 2, 3, 4, 5, 6, 7, 8,
                                      9, 10, 11, 12, 13, 14, 15, 16};
  Aes128 cipher(key);
  std::array<std::uint8_t, 16> block = {0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3,
                                        4,    5,    6,    7,    8, 9, 10, 11};
  const auto original = block;
  cipher.encrypt_block(block);
  EXPECT_NE(block, original);
  cipher.decrypt_block(block);
  EXPECT_EQ(block, original);
}

TEST(Aes128, DecryptFips197Vector) {
  std::array<std::uint8_t, 16> key;
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 16> block = {
      0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
      0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 cipher(key);
  cipher.decrypt_block(block);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(block[i], static_cast<std::uint8_t>(i * 0x11));
}

TEST(Aes128Ctr, RoundTrip) {
  std::array<std::uint8_t, 16> key{};
  key[0] = 0x42;
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  const auto original = data;
  Aes128Ctr enc(key, 77);
  enc.apply(data);
  EXPECT_NE(data, original);
  Aes128Ctr dec(key, 77);
  dec.apply(data);
  EXPECT_EQ(data, original);
}

TEST(Aes128Ctr, DifferentNoncesProduceDifferentStreams) {
  std::array<std::uint8_t, 16> key{};
  std::vector<std::uint8_t> a(64, 0), b(64, 0);
  Aes128Ctr ca(key, 1), cb(key, 2);
  ca.apply(a);
  cb.apply(b);
  EXPECT_NE(a, b);
}

TEST(Aes128Ctr, StreamingMatchesOneShot) {
  std::array<std::uint8_t, 16> key{};
  key[5] = 9;
  std::vector<std::uint8_t> oneshot(100, 0xAA);
  Aes128Ctr c1(key, 3);
  c1.apply(oneshot);

  std::vector<std::uint8_t> streamed(100, 0xAA);
  Aes128Ctr c2(key, 3);
  c2.apply(std::span<std::uint8_t>(streamed.data(), 37));
  c2.apply(std::span<std::uint8_t>(streamed.data() + 37, 63));
  EXPECT_EQ(oneshot, streamed);
}

}  // namespace
}  // namespace medsen::crypto
