// medsen_cli — command-line driver for the MedSen pipeline.
//
//   medsen_cli diagnose [--cells N/uL] [--duration S] [--seed K]
//                       [--electrodes 2|3|5|9|16] [--csv] [--per-cell-keys]
//   medsen_cli auth --code L-L [--duration S] [--seed K]
//   medsen_cli enroll-demo [--users N]
//   medsen_cli keysize [--cells N] [--electrodes N] [--bits B]
//
// A thin shell over the library so the full protocol can be exercised
// without writing code; every command prints a short human-readable
// report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "auth/collision.h"
#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "core/percell.h"
#include "crypto/keymath.h"
#include "phone/relay.h"

using namespace medsen;

namespace {

struct Args {
  double cells = 450.0;
  double duration = 60.0;
  std::uint64_t seed = 1;
  std::size_t electrodes = 9;
  std::string code;
  int users = 5;
  std::uint64_t keysize_cells = 20000;
  unsigned bits = 4;
  bool csv = false;
  bool per_cell_keys = false;
};

Args parse(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--cells") args.cells = std::atof(next());
    else if (flag == "--duration") args.duration = std::atof(next());
    else if (flag == "--seed") args.seed = std::strtoull(next(), nullptr, 10);
    else if (flag == "--electrodes") args.electrodes = std::strtoul(next(), nullptr, 10);
    else if (flag == "--code") args.code = next();
    else if (flag == "--users") args.users = std::atoi(next());
    else if (flag == "--bits") args.bits = static_cast<unsigned>(std::atoi(next()));
    else if (flag == "--csv") args.csv = true;
    else if (flag == "--per-cell-keys") args.per_cell_keys = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      std::exit(2);
    }
  }
  return args;
}

core::KeyParams key_params_for(std::size_t electrodes) {
  core::KeyParams params;
  params.num_electrodes = electrodes;
  params.gain_min = 0.8;
  params.gain_max = 1.6;
  return params;
}

int cmd_diagnose(const Args& args) {
  const auto design = sim::standard_design(args.electrodes);
  const auto params = key_params_for(args.electrodes);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acq;
  acq.carriers_hz = {5.0e5, 2.0e6};

  core::Controller controller(params, design,
                              core::DiagnosticProfile::cd4_staging(),
                              args.seed * 7919);
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  phone::RelayConfig relay_config;
  relay_config.csv_format = args.csv;
  phone::PhoneRelay relay(relay_config);
  const std::vector<std::uint8_t> mac_key = {0x11};
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!relay.establish_session(controller, args.seed, server)) {
    std::fprintf(stderr, "session handshake failed\n");
    return 1;
  }

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, args.cells}};

  core::PeakReport report;
  core::Diagnosis diagnosis;
  if (args.per_cell_keys) {
    crypto::ChaChaRng key_rng(args.seed * 31);
    const auto result = core::acquire_per_cell_keyed(
        sample, channel, design, acq, params, args.duration, key_rng,
        args.seed);
    const auto response = relay.relay_analysis(
        result.acquisition.signals, 0, server, {},
        controller.session_crypto());
    report = core::PeakReport::deserialize(response.payload);
    const auto decoded = core::decrypt_report(report, result.schedule,
                                              design, args.duration);
    const double volume = 0.08 * args.duration / 60.0;
    diagnosis = core::diagnose(core::DiagnosticProfile::cd4_staging(),
                               decoded.estimated_count, volume);
    std::printf("scheme: ideal per-cell keys (%llu bits)\n",
                static_cast<unsigned long long>(result.schedule.size_bits()));
  } else {
    (void)controller.begin_session(args.duration);
    core::SensorEncryptor encryptor(design, channel, acq);
    const auto enc = encryptor.acquire(
        sample, controller.session_key_schedule_for_testing(),
        args.duration, args.seed);
    const auto response = relay.relay_analysis(
        enc.signals, 0, server, {}, controller.session_crypto());
    report = core::PeakReport::deserialize(response.payload);
    diagnosis = controller.conclude(report);
    std::printf("scheme: periodic keys (%llu bits)\n",
                static_cast<unsigned long long>(
                    controller.session_key_bits()));
  }
  std::printf("ciphertext peaks seen by cloud: %zu\n",
              report.reference_peak_count());
  std::printf("decoded: %.1f cells in %.3f uL -> %.0f cells/uL\n",
              diagnosis.estimated_count, diagnosis.volume_ul,
              diagnosis.concentration_per_ul);
  std::printf("diagnosis: %s%s\n", diagnosis.condition.c_str(),
              diagnosis.alert ? "  [ALERT]" : "");
  std::printf("latency: %.0f ms\n", relay.timing().total_s() * 1e3);
  return 0;
}

int cmd_auth(const Args& args) {
  if (args.code.empty()) {
    std::fprintf(stderr, "auth requires --code L-L (e.g. --code 1-2)\n");
    return 2;
  }
  auth::CytoAlphabet alphabet;
  auth::CytoCode code;
  for (std::size_t pos = 0; pos < args.code.size();) {
    const std::size_t dash = args.code.find('-', pos);
    const std::string field = args.code.substr(
        pos, dash == std::string::npos ? std::string::npos : dash - pos);
    code.levels.push_back(static_cast<std::uint8_t>(std::atoi(field.c_str())));
    if (dash == std::string::npos) break;
    pos = dash + 1;
  }
  if (code.levels.size() != alphabet.characters()) {
    std::fprintf(stderr, "code must have %zu characters\n",
                 alphabet.characters());
    return 2;
  }

  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  server.enrollments().enroll("patient", code);

  const auto design = sim::standard_design(9);
  const auto params = key_params_for(9);
  core::Controller controller(params, design,
                              core::DiagnosticProfile::cd4_staging(),
                              args.seed);
  (void)controller.begin_plaintext_session(args.duration);

  sim::SampleSpec sample;
  sample.components = auth::encode_mixture(alphabet, code);
  sample.components.push_back({sim::ParticleType::kBloodCell, 400.0});
  sim::ChannelConfig channel;
  core::SensorEncryptor encryptor(design, channel,
                                  sim::AcquisitionConfig{});
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), args.duration,
      args.seed + 1);

  phone::PhoneRelay relay;
  const std::vector<std::uint8_t> mac_key = {0x22};
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!relay.establish_session(controller, args.seed, server)) {
    std::fprintf(stderr, "session handshake failed\n");
    return 1;
  }
  const auto response = relay.relay_auth(
      enc.signals, 0, controller.session_volume_ul(), server, {},
      args.duration, controller.session_crypto());
  const auto decision =
      net::AuthDecisionPayload::deserialize(response.payload);
  std::printf("code %s -> %s (matched '%s', distance %.3f)\n",
              code.to_string().c_str(),
              decision.authenticated ? "AUTHENTICATED" : "REJECTED",
              decision.user_id.c_str(), decision.distance);
  return decision.authenticated ? 0 : 1;
}

int cmd_enroll_demo(const Args& args) {
  auth::CytoAlphabet alphabet;
  auth::EnrollmentDatabase db(alphabet);
  crypto::ChaChaRng rng(args.seed);
  std::printf("alphabet: %zu types x %zu levels = %llu codes (%.1f bits)\n",
              alphabet.characters(), alphabet.levels(),
              static_cast<unsigned long long>(alphabet.space_size()),
              alphabet.entropy_bits());
  for (int i = 0; i < args.users; ++i) {
    const auto code =
        db.enroll_random("user" + std::to_string(i), rng);
    std::printf("  user%d -> %s\n", i, code.to_string().c_str());
  }
  std::printf("birthday collision probability at %d users: %.4f\n",
              args.users,
              auth::birthday_collision_probability(
                  alphabet, static_cast<std::uint64_t>(args.users)));
  return 0;
}

int cmd_keysize(const Args& args) {
  crypto::KeySizeParams params;
  params.cells = args.keysize_cells;
  params.electrodes = static_cast<std::uint32_t>(args.electrodes);
  params.gain_bits = args.bits;
  params.flow_bits = args.bits;
  std::printf("ideal per-cell key (Eq. 2): %llu bits (%.4f MB) for %llu "
              "cells, %zu electrodes, %u-bit gains/flow\n",
              static_cast<unsigned long long>(crypto::total_key_bits(params)),
              static_cast<double>(crypto::total_key_bytes(params)) / 1e6,
              static_cast<unsigned long long>(params.cells),
              args.electrodes, args.bits);
  std::printf("periodic scheme, 60 s at 2 s rotation: %llu bits\n",
              static_cast<unsigned long long>(
                  crypto::periodic_key_bits(params, 60.0, 2.0)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: medsen_cli <diagnose|auth|enroll-demo|keysize> "
                 "[flags]\n");
    return 2;
  }
  const std::string command = argv[1];
  Args args = parse(argc, argv, 2);
  if (command == "keysize") args.keysize_cells = static_cast<std::uint64_t>(args.cells == 450.0 ? 20000 : args.cells);
  if (command == "diagnose") return cmd_diagnose(args);
  if (command == "auth") return cmd_auth(args);
  if (command == "enroll-demo") return cmd_enroll_demo(args);
  if (command == "keysize") return cmd_keysize(args);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
