// Cyto-coded passwords end to end: a clinic enrolls patients by issuing
// bead-coded pipette kits; a patient authenticates by running their
// bead-mixed sample with encryption off; the cloud classifies the bead
// peaks, matches the census against the enrollment database, stores the
// (encrypted) result under the identifier, and a practitioner later
// fetches the history with the same code. Includes the integrity check
// from Section V and the alphabet's collision analysis.

#include <cstdio>

#include "auth/collision.h"
#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "phone/relay.h"

using namespace medsen;

int main() {
  auth::CytoAlphabet alphabet;
  alphabet.validate();
  std::printf("alphabet: %zu bead types x %zu levels -> %llu identifiers "
              "(%.1f bits)\n",
              alphabet.characters(), alphabet.levels(),
              static_cast<unsigned long long>(alphabet.space_size()),
              alphabet.entropy_bits());

  auth::CollisionModel model;
  model.volume_ul = 0.8;
  const auto analysis = auth::analyze_collisions(alphabet, model);
  std::printf("per-character confusion at %.1f uL: %.2e; code error: "
              "%.2e; effective entropy %.1f bits\n",
              model.volume_ul, analysis.per_character_confusion,
              analysis.code_error_probability,
              analysis.effective_entropy_bits);
  std::printf("collision among 10 random enrollments: %.3f\n\n",
              auth::birthday_collision_probability(alphabet, 10));

  // --- Enrollment: the clinic issues Alice a bead-coded pipette kit.
  // The service refuses legacy static-key traffic: the bead census rides
  // a negotiated session like any other command.
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  crypto::ChaChaRng clinic_rng(99);
  const auth::CytoCode alice_code =
      server.enrollments().enroll_random("alice", clinic_rng);
  std::printf("enrolled alice with cyto-code %s\n",
              alice_code.to_string().c_str());

  // --- Authentication pass: bead mixture + blood, encryption off.
  const auto design = sim::standard_design(9);
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 5);
  const double duration_s = 600.0;
  (void)controller.begin_plaintext_session(duration_s);

  sim::SampleSpec sample;
  sample.components = auth::encode_mixture(alphabet, alice_code);
  sample.components.push_back({sim::ParticleType::kBloodCell, 420.0});
  sim::ChannelConfig channel;
  core::SensorEncryptor encryptor(design, channel, sim::AcquisitionConfig{});
  const auto acquisition = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration_s, 55);

  phone::PhoneRelay relay;
  const std::vector<std::uint8_t> mac_key = {7, 7};
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!relay.establish_session(controller, 1, server)) {
    std::printf("session handshake failed\n");
    return 1;
  }
  const auto decision_envelope = relay.relay_auth(
      acquisition.signals, 0, controller.session_volume_ul(), server, {},
      duration_s, controller.session_crypto());
  const auto decision =
      net::AuthDecisionPayload::deserialize(decision_envelope.payload);
  std::printf("authentication: %s (matched '%s', distance %.3f)\n",
              decision.authenticated ? "ACCEPTED" : "REJECTED",
              decision.user_id.c_str(), decision.distance);

  // --- Store a diagnostic record under the identifier; fetch it back.
  server.store_result(alice_code,
                      {/*session_id=*/1, {0xE5, 0xC0, 0xDE}});
  const auto fetched = server.records().latest(alice_code);
  std::printf("record store: %zu identifier(s); fetched session %llu "
              "(%zu-byte encrypted blob)\n",
              server.records().identifier_count(),
              static_cast<unsigned long long>(fetched->session_id),
              fetched->encrypted_result.size());

  // --- An impostor with a guessed code is rejected.
  auth::CytoCode guess;
  guess.levels = {1, 1};
  if (guess == alice_code) guess.levels = {2, 1};
  sim::SampleSpec impostor;
  impostor.components = auth::encode_mixture(alphabet, guess);
  impostor.components.push_back({sim::ParticleType::kBloodCell, 380.0});
  (void)controller.begin_plaintext_session(duration_s);
  const auto impostor_acq = encryptor.acquire(
      impostor, controller.session_key_schedule_for_testing(), duration_s,
      77);
  const auto impostor_decision = net::AuthDecisionPayload::deserialize(
      relay.relay_auth(impostor_acq.signals, 0,
                       controller.session_volume_ul(), server, {},
                       duration_s, controller.session_crypto())
          .payload);
  std::printf("impostor with code %s: %s\n", guess.to_string().c_str(),
              impostor_decision.authenticated
                  ? "ACCEPTED (uh oh)"
                  : (impostor_decision.user_id.empty()
                         ? "REJECTED"
                         : "REJECTED (nearest user but out of margin)"));
  return 0;
}
