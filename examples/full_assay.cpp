// The complete MedSen assay of the paper's Figs. 1+2, end to end:
//
//   1. capture chamber: antibody pre-concentration of the target cells
//   2. pipette kit: mix in the patient's cyto-coded password beads
//   3. authentication pass (encryption off): cloud matches the bead census
//   4. diagnostic pass (in-sensor encryption on): cloud counts ciphertext
//      peaks, controller decodes, result stored under the identifier
//   5. practitioner access: unwrap the escrowed session key and decode
//      the stored ciphertext report independently
//
// Every component is the production path — no test shortcuts.

#include <algorithm>
#include <cstdio>

#include "cloud/persistence.h"
#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "core/escrow.h"
#include "phone/relay.h"
#include "sim/capture.h"

using namespace medsen;

int main() {
  const auto design = sim::standard_design(9);
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  key_params.gain_min = 0.8;
  key_params.gain_max = 1.6;
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acq;
  acq.carriers_hz = {5.0e5, 8.0e5, 2.0e6, 2.5e6};

  auth::CytoAlphabet alphabet;
  // Production posture: the legacy static-key plane is off, so both the
  // auth pass and the diagnostic pass ride one negotiated session.
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{}, alphabet,
                                   auth::ParticleClassifier::train(
                                       {acq.carriers_hz, 300, 0.06, 7}),
                                   auth::VerifierConfig{}, nullptr, service);
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 404);
  phone::PhoneRelay relay;
  const std::vector<std::uint8_t> mac_key = {0xAB};
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!relay.establish_session(controller, 1, server)) {
    std::printf("session handshake failed\n");
    return 1;
  }
  const std::vector<std::uint8_t> practitioner_secret = {0x50, 0x4C};

  // --- 0. Enrollment (done once at the clinic).
  crypto::ChaChaRng clinic_rng(1);
  const auto code = server.enrollments().enroll_random("patient-007",
                                                       clinic_rng);
  std::printf("[clinic] issued pipette kit with cyto-code %s\n",
              code.to_string().c_str());

  // --- 1. Capture chamber enriches the diagnostic target.
  sim::SampleSpec whole_blood;
  whole_blood.components = {{sim::ParticleType::kBloodCell, 350.0}};
  sim::CaptureChamberConfig chamber;
  chamber.concentration_factor = 2.0;
  const auto captured = sim::capture_release(whole_blood, chamber);
  std::printf("[sensor] capture chamber: %.0f -> %.0f cells/uL (%.1fx)\n",
              350.0,
              captured.enriched.expected_count(
                  sim::ParticleType::kBloodCell, 1.0),
              sim::enrichment_factor(whole_blood, captured,
                                     sim::ParticleType::kBloodCell));

  // --- 2. Mix in the password beads.
  sim::SampleSpec assay_sample = captured.enriched;
  for (const auto& component : auth::encode_mixture(alphabet, code))
    assay_sample.components.push_back(component);

  // --- 3. Authentication pass, encryption off.
  const double auth_duration = 420.0;
  (void)controller.begin_plaintext_session(auth_duration);
  core::SensorEncryptor encryptor(design, channel, acq);
  const auto auth_acq = encryptor.acquire(
      assay_sample, controller.session_key_schedule_for_testing(),
      auth_duration, 11);
  const auto decision = net::AuthDecisionPayload::deserialize(
      relay.relay_auth(auth_acq.signals, 0,
                       controller.session_volume_ul(), server, {},
                       auth_duration, controller.session_crypto())
          .payload);
  std::printf("[cloud ] authentication: %s as '%s' (distance %.2f)\n",
              decision.authenticated ? "ACCEPTED" : "REJECTED",
              decision.user_id.c_str(), decision.distance);
  if (!decision.authenticated) return 1;

  // --- 4. Encrypted diagnostic pass. The diagnostic aliquot is diluted
  // 4x so the multiplied peak trains stay within the counter's dynamic
  // range at this bead load (standard practice; the count scales back).
  const double dilution = 0.25;
  sim::SampleSpec dx_sample = assay_sample;
  for (auto& component : dx_sample.components)
    component.concentration_per_ul *= dilution;
  const double dx_duration = 240.0;
  (void)controller.begin_session(dx_duration);
  const auto dx_acq = encryptor.acquire(
      dx_sample, controller.session_key_schedule_for_testing(),
      dx_duration, 13);
  const auto response = relay.relay_analysis(dx_acq.signals, 0, server, {},
                                             controller.session_crypto());
  const auto report = core::PeakReport::deserialize(response.payload);
  // The decoded peaks include the password beads. The controller
  // classifies each gain-corrected peak by its multi-frequency shape
  // (the frequency-ratio features cancel any residual gain error) and
  // counts only the blood cells, scaled back by the multiplication
  // factor and dilution.
  const auto decoded_all = controller.decrypt(report);
  const double volume = controller.session_volume_ul();
  const auto classifier = auth::ParticleClassifier::train(
      {acq.carriers_hz, 300, 0.06, 7});
  double cell_peaks = 0.0;
  for (const auto& peak : decoded_all.peaks)
    if (classifier.classify(peak.amplitudes) ==
        sim::ParticleType::kBloodCell)
      cell_peaks += 1.0;
  // Cells' share of ciphertext peaks, applied to the decoded count.
  const double cell_fraction =
      decoded_all.peaks.empty()
          ? 0.0
          : cell_peaks / static_cast<double>(decoded_all.peaks.size());
  const double cells_only = decoded_all.estimated_count * cell_fraction;
  // Undo the dilution and the capture-chamber enrichment to report the
  // patient's whole-blood concentration.
  const double enrichment = sim::enrichment_factor(
      whole_blood, captured, sim::ParticleType::kBloodCell);
  const auto diagnosis = core::diagnose(
      core::DiagnosticProfile::cd4_staging(),
      cells_only / dilution / enrichment, volume);
  std::printf("[sensor] decoded %.0f particles/uL (%.0f%% classified as "
              "cells) -> %.0f cells/uL whole blood (true: 350) -> %s%s\n",
              decoded_all.estimated_count / volume, cell_fraction * 100.0,
              diagnosis.concentration_per_ul, diagnosis.condition.c_str(),
              diagnosis.alert ? "  [ALERT]" : "");

  // The cloud stores the ciphertext report under the identifier.
  server.store_result(code, {2, response.payload});

  // --- 5. Practitioner fetches and decodes with the escrowed key.
  const auto package = core::escrow_key_schedule(
      controller.session_key_schedule_for_testing(), practitioner_secret,
      999);
  const auto stored = server.records().latest(code);
  const auto stored_report =
      core::PeakReport::deserialize(stored->encrypted_result);
  const auto decoded = core::practitioner_decrypt(
      package, practitioner_secret, stored_report, design, dx_duration);
  std::printf("[doctor] independent decode of stored record: %.1f cells "
              "(sensor decoded %.1f)\n",
              decoded.estimated_count, diagnosis.estimated_count);

  // Persist the cloud state the way a real deployment would.
  const std::string dir = "/tmp";
  cloud::save_enrollments(server.enrollments(), dir + "/medsen_enroll.bin");
  cloud::save_records(server.records(), dir + "/medsen_records.bin");
  const auto reloaded = cloud::load_records(dir + "/medsen_records.bin");
  std::printf("[cloud ] state persisted and reloaded: %zu record(s) on "
              "disk\n",
              reloaded.record_count());
  std::remove((dir + "/medsen_enroll.bin").c_str());
  std::remove((dir + "/medsen_records.bin").c_str());
  return 0;
}
