// What does the curious-but-honest cloud actually see? This example runs
// one encrypted acquisition and prints, side by side:
//   * the ground truth (simulator-only),
//   * the ciphertext view (peak count, amplitude/width spread),
//   * every standard attacker's best count estimate,
//   * the legitimate decode with the key.
// It then re-runs with the cipher disabled to show the leak MedSen closes.

#include <cstdio>

#include "cloud/analysis_service.h"
#include "core/attacker.h"
#include "core/controller.h"
#include "core/decryptor.h"
#include "core/encryptor.h"
#include "util/stats.h"

using namespace medsen;

namespace {

void report_view(const char* label, const core::PeakReport& report,
                 std::size_t truth,
                 const core::DecryptionResult* decoded) {
  const auto& peaks = report.nearest_channel(5.0e5).peaks;
  std::vector<double> amplitudes, widths;
  for (const auto& p : peaks) {
    amplitudes.push_back(p.amplitude);
    widths.push_back(p.width_s);
  }
  std::printf("%s\n", label);
  std::printf("  ciphertext peaks: %zu (true particles: %zu)\n",
              peaks.size(), truth);
  if (!amplitudes.empty()) {
    std::printf("  amplitude spread: mean %.4f, cv %.2f\n",
                util::mean(amplitudes),
                util::stddev(amplitudes) / util::mean(amplitudes));
    std::printf("  width spread:     mean %.1f ms, cv %.2f\n",
                util::mean(widths) * 1e3,
                util::stddev(widths) / util::mean(widths));
  }
  if (decoded)
    std::printf("  legitimate decode: %.1f particles (error %.1f%%)\n",
                decoded->estimated_count,
                100.0 * core::recovery_error(decoded->estimated_count,
                                             static_cast<double>(truth)));
}

}  // namespace

int main() {
  const auto design = sim::standard_design(9);
  sim::ChannelConfig channel;
  sim::AcquisitionConfig acquisition;
  acquisition.carriers_hz = {5.0e5, 2.0e6};
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  key_params.min_active_electrodes = 2;

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 150.0}};
  const double duration_s = 45.0;

  // --- Encrypted run.
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 99);
  (void)controller.begin_session(duration_s);
  core::SensorEncryptor encryptor(design, channel, acquisition);
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration_s, 1);
  cloud::AnalysisService service;
  const auto report = service.analyze(enc.signals);
  const auto decoded = controller.decrypt(report);
  report_view("=== encrypted acquisition (what the cloud sees) ===", report,
              enc.truth.total_particles(), &decoded);

  std::printf("\n  attacker estimates (truth hidden from them):\n");
  for (auto& attacker : core::standard_attackers(design)) {
    const double estimate = attacker->estimate_count(report);
    std::printf("    %-20s -> %7.1f particles (error %.0f%%)\n",
                attacker->name().c_str(), estimate,
                100.0 * core::recovery_error(
                            estimate,
                            static_cast<double>(enc.truth.total_particles())));
  }

  // --- Control run with the cipher off: single fixed electrode.
  std::printf("\n");
  core::Controller plain_controller(key_params, design,
                                    core::DiagnosticProfile::cd4_staging(),
                                    100);
  (void)plain_controller.begin_plaintext_session(duration_s);
  const auto plain = encryptor.acquire(
      sample, plain_controller.session_key_schedule_for_testing(),
      duration_s, 1);
  const auto plain_report = service.analyze(plain.signals);
  report_view("=== encryption OFF (the leak MedSen closes) ===",
              plain_report, plain.truth.total_particles(), nullptr);
  std::printf("  a naive eavesdropper now reads the count directly: %zu\n",
              plain_report.reference_peak_count());
  std::printf("\nkey material never left the controller: %llu bits\n",
              static_cast<unsigned long long>(
                  controller.session_key_bits()));
  return 0;
}
