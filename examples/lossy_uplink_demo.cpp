// Lossy uplink demo: the same encrypted diagnostic round trip as
// quickstart, but over a 4G link that drops, corrupts, duplicates, and
// reorders datagrams. The reliable transport (chunked ARQ with CRC
// framing, ACKs, and exponential backoff) delivers a bit-identical peak
// report; when the link is a total black hole, the phone degrades
// gracefully to on-device analysis instead of failing the test.
//
// Build & run:  cmake --build build && ./build/examples/lossy_uplink_demo

#include <cmath>
#include <cstdio>

#include "cloud/server.h"
#include "core/controller.h"
#include "phone/relay.h"

using namespace medsen;

namespace {

// A clean acquisition with three cell transits (no crypto, to keep the
// focus on the transport).
util::MultiChannelSeries three_cell_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  for (std::size_t i = 0; i < 9000; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (int d = 0; d < 3; ++d) {
      const double z = (t - (4.0 + 3.0 * d)) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

phone::RelayConfig lossy_config(double drop_rate) {
  phone::RelayConfig config;
  config.reliable_transport = true;
  config.uplink_faults.drop_rate = drop_rate;
  config.uplink_faults.corrupt_rate = 0.02;
  config.uplink_faults.duplicate_rate = 0.02;
  config.uplink_faults.reorder_rate = 0.02;
  config.uplink_faults.seed = 2006;
  config.downlink_faults = config.uplink_faults;
  config.downlink_faults.seed = 2001;
  config.reliable.chunk_bytes = 256;
  config.reliable.retry_budget = drop_rate >= 1.0 ? 6 : 400;
  return config;
}

}  // namespace

int main() {
  const auto series = three_cell_series();
  const std::vector<std::uint8_t> mac_key = {0xA5, 0x5A, 0x3C};
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  server.provision_device(phone::RelayConfig{}.device_id, mac_key);

  // The session crypto lives in the controller (the TCB); the handshake
  // runs over the clean link and the derived session keys then ride
  // every subsequent upload, lossy or not — the envelope layer is
  // independent of the transport underneath it.
  const auto design = sim::standard_design(9);
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 2006);
  controller.enable_session_crypto(phone::RelayConfig{}.device_id, mac_key);

  // 1. Idealized link: the baseline answer.
  phone::PhoneRelay lossless;
  if (!lossless.establish_session(controller, 1, server)) {
    std::printf("session handshake failed\n");
    return 1;
  }
  const auto clean = lossless.relay_analysis(series, 0, server, {},
                                             controller.session_crypto());
  const auto clean_report = core::PeakReport::deserialize(clean.payload);
  std::printf("lossless link : %zu peaks, uplink %.1f ms\n",
              clean_report.reference_peak_count(),
              lossless.timing().uplink_s * 1e3);

  // 2. 10%% drop + corruption + duplication + reordering: same answer,
  //    more air time.
  phone::PhoneRelay lossy(lossy_config(0.10));
  lossy.set_progress_callback(
      [](const std::string& msg) { std::printf("  [phone] %s\n", msg.c_str()); });
  const auto noisy = lossy.relay_analysis(series, 0, server, {},
                                          controller.session_crypto());
  std::printf("lossy link    : report bit-identical: %s | retransmissions "
              "%zu, timeouts %zu, uplink %.1f ms\n",
              noisy.payload == clean.payload ? "yes" : "NO",
              lossy.timing().retransmissions, lossy.timing().timeouts,
              lossy.timing().uplink_s * 1e3);

  // 3. Black hole: the retry budget runs out and the phone analyzes the
  //    sample locally rather than losing the test session.
  phone::PhoneRelay offline(lossy_config(1.0));
  const auto local = offline.relay_analysis(series, 0, server, {},
                                            controller.session_crypto());
  const auto local_report = core::PeakReport::deserialize(local.payload);
  std::printf("dead link     : local fallback %s, %zu peaks found on-phone\n",
              offline.timing().local_fallback ? "engaged" : "NOT engaged",
              local_report.reference_peak_count());
  return 0;
}
