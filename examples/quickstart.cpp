// Quickstart: one encrypted point-of-care diagnostic round trip.
//
//   sensor (TCB) --encrypted signal--> phone --upload--> cloud
//   cloud --peak report--> phone --> sensor --decode--> diagnosis
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "phone/relay.h"

using namespace medsen;

int main() {
  // 1. Describe the hardware: the 9-output electrode array and channel.
  const sim::ElectrodeArrayDesign design = sim::standard_design(9);
  sim::ChannelConfig channel;  // 30x20 um pore, defaults from the paper

  // 2. The trusted computing base: key generation + decode live here.
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  // Gain range narrowed from the paper's full 4x swing so the weakest
  // gain still keeps every cell above the detection threshold (the paper
  // notes the range is tuned to "security and sensor precision
  // requirements", Section VI-B).
  key_params.gain_min = 0.8;
  key_params.gain_max = 1.6;
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(),
                              /*entropy_seed=*/20260707);

  // 3. Untrusted parties: the phone relay and the cloud server. The
  //    service runs with the legacy static-key plane disabled: every
  //    command must ride a negotiated session, so a stolen long-term MAC
  //    key alone cannot replay or forge traffic.
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  phone::PhoneRelay relay;
  relay.set_progress_callback(
      [](const std::string& msg) { std::printf("  [app] %s\n", msg.c_str()); });
  const std::vector<std::uint8_t> mac_key = {0x42, 0x42};
  // Provision this dongle's MAC key with the service (out-of-band step),
  // arm the controller's session crypto with the same long-term key, and
  // negotiate derived session keys before any diagnostic traffic flows.
  server.provision_device(relay.config().device_id, mac_key);
  controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!relay.establish_session(controller, /*session=*/1, server)) {
    std::printf("session handshake failed\n");
    return 1;
  }

  // 4. A patient's blood sample (simulated; CD4-like cells at 450/uL).
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, 450.0}};

  // 5. Acquire WITH in-sensor encryption: the key schedule drives the
  //    multiplexer, gains and pump; the signal leaves already encrypted.
  const double duration_s = 30.0;
  (void)controller.begin_session(duration_s);
  sim::AcquisitionConfig acq_config;
  acq_config.carriers_hz = {5.0e5, 2.0e6};  // counting + classification
  core::SensorEncryptor encryptor(design, channel, acq_config);
  const auto acquisition = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration_s,
      /*seed=*/7);
  std::printf("acquired %zu samples across %zu carriers (%zu particles "
              "passed the pore)\n",
              acquisition.signals.total_samples(),
              acquisition.signals.channel_count(),
              acquisition.truth.total_particles());

  // 6. Phone relays to the cloud over the negotiated session (the
  //    session id and MAC key come from the handshake; the legacy
  //    arguments are ignored when session crypto is active).
  const auto response =
      relay.relay_analysis(acquisition.signals, /*session=*/0, server, {},
                           controller.session_crypto());
  const auto report = core::PeakReport::deserialize(response.payload);
  std::printf("cloud saw %zu encrypted peaks (true count: %zu)\n",
              report.reference_peak_count(),
              acquisition.truth.total_particles());

  // 7. Only the controller can decode the report into a diagnosis.
  const core::Diagnosis diagnosis = controller.conclude(report);
  std::printf("decoded count: %.1f cells in %.3f uL -> %.0f cells/uL\n",
              diagnosis.estimated_count, diagnosis.volume_ul,
              diagnosis.concentration_per_ul);
  std::printf("diagnosis: %s%s\n", diagnosis.condition.c_str(),
              diagnosis.alert ? "  [ALERT]" : "");
  std::printf("processing latency: %.0f ms (paper reports ~200 ms per window)\n",
              relay.timing().total_s() * 1e3);
  return 0;
}
