// HIV progression monitoring: the paper's motivating workload. CD4+
// T-cell count is "the strongest predictor of HIV progression"; elderly
// or chronic patients run the test at home daily. This example runs three
// simulated patients at different disease stages through the full
// encrypted pipeline and prints their staging, plus a longitudinal series
// for one patient whose count declines over visits.

#include <cstdio>
#include <cstdlib>

#include "cloud/server.h"
#include "core/controller.h"
#include "core/encryptor.h"
#include "phone/relay.h"

using namespace medsen;

namespace {

// One at-home test. The device is provisioned once (in main); each
// controller arms session crypto with the shared long-term key and
// handshakes on its first visit, so repeat visits ride the same
// negotiated session with advancing command counters.
core::Diagnosis run_visit(core::Controller& controller,
                          cloud::CloudServer& server,
                          phone::PhoneRelay& relay,
                          const std::vector<std::uint8_t>& mac_key,
                          double cd4_per_ul, std::uint64_t seed) {
  const auto design = sim::standard_design(9);
  sim::ChannelConfig channel;
  const double duration_s = 180.0;  // ~0.24 uL so counting noise is small
  (void)controller.begin_session(duration_s);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, cd4_per_ul}};
  sim::AcquisitionConfig acq_config;
  acq_config.carriers_hz = {5.0e5, 2.0e6};
  core::SensorEncryptor encryptor(design, channel, acq_config);
  const auto acquisition = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration_s,
      seed);

  if (controller.session_crypto() == nullptr)
    controller.enable_session_crypto(relay.config().device_id, mac_key);
  if (!controller.session_crypto()->active() &&
      !relay.establish_session(controller, seed, server)) {
    std::fprintf(stderr, "session handshake failed\n");
    std::exit(1);
  }
  const auto response = relay.relay_analysis(acquisition.signals, 0, server,
                                             {}, controller.session_crypto());
  return controller.conclude(
      core::PeakReport::deserialize(response.payload));
}

}  // namespace

int main() {
  const auto design = sim::standard_design(9);
  core::KeyParams key_params;
  key_params.num_electrodes = design.num_outputs;
  key_params.gain_min = 0.8;  // precision-safe gain range (Section VI-B)
  key_params.gain_max = 1.6;
  // Legacy static-key traffic is refused: every visit authenticates
  // through a negotiated session.
  cloud::ServiceConfig service;
  service.allow_legacy_plane = false;
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}),
                                   auth::VerifierConfig{}, nullptr, service);
  phone::PhoneRelay relay;
  const std::vector<std::uint8_t> mac_key = {1};
  server.provision_device(relay.config().device_id, mac_key);

  std::printf("=== cross-sectional screening ===\n");
  struct PatientCase {
    const char* name;
    double cd4_per_ul;
  };
  const PatientCase cases[] = {
      {"patient A (healthy)", 900.0},
      {"patient B (monitor)", 350.0},
      {"patient C (severe)", 120.0},
  };
  std::uint64_t seed = 100;
  for (const auto& patient : cases) {
    core::Controller controller(key_params, design,
                                core::DiagnosticProfile::cd4_staging(),
                                seed * 13);
    const auto diagnosis = run_visit(controller, server, relay, mac_key,
                                     patient.cd4_per_ul, seed++);
    std::printf("%-22s true %4.0f/uL -> measured %6.0f/uL : %s%s\n",
                patient.name, patient.cd4_per_ul,
                diagnosis.concentration_per_ul, diagnosis.condition.c_str(),
                diagnosis.alert ? "  [ALERT]" : "");
  }

  std::printf("\n=== longitudinal monitoring (one patient, 6 visits) ===\n");
  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 777);
  std::printf("visit,true_cd4_per_ul,measured_per_ul,alert\n");
  double cd4 = 650.0;
  for (int visit = 0; visit < 6; ++visit) {
    const auto diagnosis =
        run_visit(controller, server, relay, mac_key, cd4, 300 + visit);
    std::printf("%d,%.0f,%.0f,%s\n", visit, cd4,
                diagnosis.concentration_per_ul,
                diagnosis.alert ? "yes" : "no");
    cd4 *= 0.80;  // untreated decline between visits
  }
  std::printf("\nEach visit used a fresh one-time key schedule; the cloud "
              "never observed a true count.\n");
  return 0;
}
