#!/usr/bin/env python3
"""Analyzer selftest: prove every pass fires, and none misfires.

Runs medsen_analyze against the two fixture trees under
tests/tools/fixtures:

  bad/    one deliberate violation per pass — a logged/compared/unwiped
          secret (secret-flow), heap + throw in a crypto file (tcb), a
          dsp file including a crypto header (layering), and a mutex in
          the cloud layer (locks). Every expected rule must appear and
          the exit status must be non-zero.

  clean/  idiomatic code touching the same territory (annotated + wiped
          secret in crypto, lock-free cloud file). Zero findings, exit 0.

This is the guard against the failure mode of optional tooling: if the
analyzer regresses into silence, this test — wired into ctest — goes
red. Exit status: 0 pass, 1 fail.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
FIXTURES = REPO / "tests" / "tools" / "fixtures"
ANALYZER = HERE / "medsen_analyze.py"

EXPECTED_BAD_RULES = {
    # pass: secret-flow
    "secret-log",
    "secret-compare",
    "secret-unwiped",
    # pass: tcb
    "tcb-heap",
    "tcb-throw",
    # pass: layering
    "layering",
    # pass: locks
    "cloud-lock",
}


def run_analyzer(tree: Path):
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(tree),
         "--no-waivers", "--format", "json"],
        capture_output=True, text=True, timeout=120)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(f"selftest: analyzer emitted non-JSON for {tree}:\n"
              f"{proc.stdout}\n{proc.stderr}")
        raise SystemExit(1)
    return proc.returncode, report


def main() -> int:
    failures = []

    rc, report = run_analyzer(FIXTURES / "bad")
    found_rules = {f["rule"] for f in report["findings"]}
    missing = EXPECTED_BAD_RULES - found_rules
    if missing:
        failures.append(
            f"bad fixture: expected rules not reported: {sorted(missing)} "
            f"(got {sorted(found_rules)})")
    if rc == 0:
        failures.append("bad fixture: analyzer exited 0 on seeded "
                        "violations — it must fail")
    covered_passes = {f["pass"] for f in report["findings"]}
    if covered_passes != {"secret-flow", "tcb", "layering", "locks"}:
        failures.append(
            f"bad fixture: expected all 4 passes to fire, got "
            f"{sorted(covered_passes)}")

    rc, report = run_analyzer(FIXTURES / "clean")
    if report["findings"]:
        failures.append(
            "clean fixture: unexpected findings: " + ", ".join(
                f"{f['file']}:{f['line']} [{f['rule']}]"
                for f in report["findings"]))
    if rc != 0:
        failures.append(f"clean fixture: analyzer exited {rc}, expected 0")

    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}")
        return 1
    print("selftest: ok — all 4 passes fire on the bad tree, clean tree "
          "is quiet")
    return 0


if __name__ == "__main__":
    sys.exit(main())
