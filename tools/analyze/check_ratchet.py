#!/usr/bin/env python3
"""Enforce the waiver ratchet: analyzer debt only ever shrinks.

Two invariants, checked in order:

  1. The committed ceiling (tools/analyze/waiver_ceiling.txt) must equal
     the sum of waiver counts in tools/analyze/waivers.json exactly.
     Adding a waiver without raising the ceiling fails; removing one
     without lowering it fails too — so every debt change is a visible,
     reviewable two-file diff.

  2. Against the previous commit (when git history is available), the
     ceiling may only decrease or stay equal. A ceiling increase is a
     regression: new findings belong fixed, not waived. Override only by
     deleting the history check wholesale in a reviewed change.

Exit status: 0 ok, 1 violation, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def current_ceiling(path: Path) -> int:
    try:
        return int(path.read_text().strip())
    except (OSError, ValueError):
        print(f"check_ratchet: unreadable ceiling file {path}",
              file=sys.stderr)
        raise SystemExit(2)


def waiver_total(path: Path) -> int:
    try:
        entries = json.loads(path.read_text()).get("waivers", [])
    except (OSError, json.JSONDecodeError):
        print(f"check_ratchet: unreadable waiver file {path}",
              file=sys.stderr)
        raise SystemExit(2)
    return sum(int(e.get("count", 0)) for e in entries)


def previous_ceiling(root: Path, rel: str, current: int) -> int | None:
    """The ceiling to ratchet against: HEAD's copy when the working tree
    has uncommitted changes (pre-commit use), else HEAD~1's (CI, where
    the working tree IS HEAD and comparing it to itself proves nothing).
    None when history is unavailable or the file is new."""
    def show(ref: str) -> int | None:
        try:
            out = subprocess.run(
                ["git", "-C", str(root), "show", f"{ref}:{rel}"],
                capture_output=True, text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if out.returncode != 0:
            return None  # file didn't exist at that ref
        try:
            return int(out.stdout.strip())
        except ValueError:
            return None

    head = show("HEAD")
    if head is not None and head != current:
        return head
    return show("HEAD~1")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2])
    parser.add_argument("--skip-history", action="store_true",
                        help="skip the HEAD comparison (shallow/no git)")
    args = parser.parse_args()

    root = args.root.resolve()
    ceiling_rel = "tools/analyze/waiver_ceiling.txt"
    ceiling_path = root / ceiling_rel
    waivers_path = root / "tools" / "analyze" / "waivers.json"

    ceiling = current_ceiling(ceiling_path)
    total = waiver_total(waivers_path)

    ok = True
    if ceiling != total:
        print(f"check_ratchet: ceiling {ceiling} != waiver total {total}; "
              f"update {ceiling_rel} to match waivers.json (the pair must "
              f"move together)")
        ok = False

    if not args.skip_history:
        prev = previous_ceiling(root, ceiling_rel, ceiling)
        if prev is not None and ceiling > prev:
            print(f"check_ratchet: ceiling rose {prev} -> {ceiling}; the "
                  f"ratchet only turns down — fix the new findings instead "
                  f"of waiving them")
            ok = False

    if ok:
        print(f"check_ratchet: ok (ceiling {ceiling}, waiver total {total})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
