#!/usr/bin/env python3
"""medsen-analyze: compile-commands-driven semantic analyzer.

Four passes over the MedSen source tree, each enforcing a contract the
regex linter (tools/lint) and generic tooling cannot express:

  secret-flow   Types, fields, and locals annotated `// medsen: secret`
                (and everything of type util::SecretBytes, which is
                intrinsically secret) must never reach a logging/ostream
                sink, a plaintext wire-serialization primitive, or a
                variable-time comparison — and must not die without a
                util::secure_zero / util::secure_wipe (SecretBytes wipes
                itself). Taint is tracked through declarations
                initialized from secret expressions, one level deep.
                Rules: secret-log, secret-serialize, secret-compare,
                secret-unwiped.

  tcb           The trusted computing base (src/core/controller.*,
                src/core/recovery.*, src/crypto/*) is headed for
                firmware: heap allocation (new/make_unique/malloc),
                container growth (push_back/resize/reserve/insert),
                `throw`, and self-recursion are budgeted by a waiver
                baseline that may only shrink. Rules: tcb-heap,
                tcb-growth, tcb-throw, tcb-recursion.

  layering      The module include graph is a DAG with explicit edges:
                crypto sees only util; dsp never sees crypto (keyed
                material must not leak into signal paths); sim never
                sees cloud; core touches net only through the message
                definitions (net/messages.h), never server machinery.
                Rule: layering.

  locks         The cloud service layer is sharded: no mutex/lock
                primitives outside util::Sharded (cloud-lock), atomic
                members are written only by their declaring file pair
                (atomic-outside-owner), and nothing blocking or
                CMAC-expensive runs inside a Sharded::with() /
                for_each_shard() critical section
                (blocking-under-shard).

Frontend: uses libclang when the Python bindings are importable (a
defensive enrichment — it re-attributes pass findings to functions);
otherwise a tokenizer/AST-lite frontend that needs nothing beyond the
checked-out tree, so CI can never silently skip the analysis. The
compilation database (compile_commands.json) drives the TU list when
present; without it the tree is globbed and a warning is printed.

Suppressions: append `// medsen: allow(<rule>)` to the offending line
(or place it alone on the line above). Bulk debt lives in the waiver
baseline (tools/analyze/waivers.json): entries of {rule, file, count}
that must match the current finding count exactly — more findings is a
regression, fewer means the baseline is stale and must be ratcheted
down (tools/analyze/check_ratchet.py enforces that the total only ever
decreases).

Exit status: 0 clean, 1 findings or stale/unused waivers, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

TOOL_VERSION = "1.0"

PASSES = ("secret-flow", "tcb", "layering", "locks")

RULE_PASS = {
    "secret-log": "secret-flow",
    "secret-serialize": "secret-flow",
    "secret-compare": "secret-flow",
    "secret-unwiped": "secret-flow",
    "tcb-heap": "tcb",
    "tcb-growth": "tcb",
    "tcb-throw": "tcb",
    "tcb-recursion": "tcb",
    "layering": "layering",
    "cloud-lock": "locks",
    "atomic-outside-owner": "locks",
    "blocking-under-shard": "locks",
}

# ---------------------------------------------------------------------------
# Module layering contract. Key: module (src/<key>), value: modules whose
# headers it may include. `core -> net` is deliberately absent: the
# exception list below admits the message definitions only, never the
# server-side machinery (link.h, reliable_channel.h, ...).
LAYERING = {
    "util": {"util"},
    "compress": {"compress", "util"},
    "crypto": {"crypto", "util"},
    "dsp": {"dsp", "util"},
    "sim": {"sim", "util", "crypto", "dsp"},
    "net": {"net", "util", "crypto", "compress"},
    "core": {"core", "crypto", "util", "sim", "dsp"},
    "auth": {"auth", "util", "crypto", "dsp", "sim", "core"},
    "cloud": {"cloud", "util", "crypto", "net", "dsp", "auth", "core",
              "compress"},
    "phone": {"phone", "cloud", "core", "net", "crypto", "util", "dsp",
              "sim", "auth", "compress"},
}
LAYERING_EXCEPTIONS = {
    # (module, exact include) pairs that are allowed despite the matrix.
    ("core", "net/messages.h"),
}

TCB_PATTERNS = ("src/core/controller.", "src/core/recovery.", "src/crypto/")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
ALLOW_RE = re.compile(r"//\s*medsen:\s*allow\(([\w\-, ]+)\)")
SECRET_RE = re.compile(r"//.*\bmedsen:\s*secret\b")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(\w+)")

# Declaration name extraction for `// medsen: secret` lines.
DECL_INIT_RE = re.compile(r"(\w+)\s*=")
DECL_PLAIN_RE = re.compile(r"(\w+)\s*(?:\{[^{}]*\})?\s*;")

SECRETBYTES_DECL_RE = re.compile(
    r"\b(?:util\s*::\s*)?SecretBytes\b[^;=(]*?\b(\w+)\s*[;={(]")

WIPE_CALL = "secure_(?:wipe|zero)"

# secret-flow sinks -----------------------------------------------------
STREAM_NAME_RE = re.compile(
    r"\b(?:std::)?(?:cout|cerr|clog)\b|\bostringstream\b|\bostream\b|"
    r"\blog(?:ger)?\b|\bprintf\b|\bfprintf\b|\bsnprintf\b")
SERIAL_SINK_RE_TMPL = (
    r"\.(?:bytes|blob|str|u8|u16|u32|u64|f64)\(\s*[^);]*\b{name}\b|"
    r"\bto_csv\s*\([^)]*\b{name}\b")
COMPARE_RE_TMPL = (
    r"\b{name}\b(?:\.\w+)*\s*[=!]=|[=!]=\s*(?:[\w.>-]+\.)?\b{name}\b|"
    r"\bmemcmp\s*\([^)]*\b{name}\b")
COMPARE_EXEMPT_RE = re.compile(
    r"constant_time|digest_equal|\.(?:size|empty|end|begin|has_value|"
    r"length)\s*\(|[=!]=\s*(?:nullptr|NULL\b|0[ul)\s;]|0$)")

# tcb rules -------------------------------------------------------------
HEAP_RE = re.compile(
    r"(?<![\w.:])new\b(?!\s*\()|\bmake_unique\b|\bmake_shared\b|"
    r"(?<![\w.:])(?:malloc|calloc|realloc)\s*\(")
GROWTH_RE = re.compile(
    r"\.(?:push_back|emplace_back|emplace|resize|reserve|insert|append)"
    r"\s*\(")
THROW_RE = re.compile(r"(?<![\w.:])throw\b(?!\s*;)")
FUNC_DEF_RE = re.compile(
    r"^(?:[\w:<>,&*~\s]|::)*?\b(?:(\w+)::)?(\w+)\s*\([^;{}]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?\{", re.MULTILINE)

# locks rules -----------------------------------------------------------
CLOUD_LOCK_RE = re.compile(
    r"\bstd\s*::\s*(?:timed_|recursive_|shared_)*mutex\b|"
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b")
ATOMIC_DECL_RE = re.compile(r"\bstd\s*::\s*atomic\s*<[^;]*>\s+(\w+)\s*[;{]")
ATOMIC_WRITE_TMPL = r"\b{name}\s*(?:\.\s*(?:store|fetch_\w+|exchange)\s*\(|=[^=])"
SHARD_ENTRY_RE = re.compile(r"\.(?:with|for_each_shard)\s*\(")
BLOCKING_RE = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|\.wait\s*\(|\.join\s*\(|"
    r"\bkdf_cmac\b|\bdiversify_device_key\b|\bderive_session_mac_key\b|"
    r"\baes_cmac\b|\bhmac_sha256\b|\bsession_proof\b|\bhkdf\w*\s*\(|"
    r"\.analyze\s*\(|\.handle\s*\(")


@dataclass
class Finding:
    rule: str
    file: str  # root-relative, forward slashes
    line: int
    message: str
    waived: bool = False

    def key(self):
        return (self.rule, self.file)

    def to_json(self):
        return {"rule": self.rule, "pass": RULE_PASS[self.rule],
                "file": self.file, "line": self.line,
                "message": self.message, "waived": self.waived}


@dataclass
class SourceFile:
    path: Path
    rel: str
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)  # strings/comments blanked

    @property
    def module(self) -> str | None:
        parts = self.rel.split("/")
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    @property
    def stem_key(self) -> str:
        return str(Path(self.rel).with_suffix(""))

    @property
    def is_tcb(self) -> bool:
        return any(self.rel.startswith(p) for p in TCB_PATTERNS)


def strip_code(text: str) -> str:
    """Blank out string/char literals and comments, preserving offsets
    and newlines, so token scans never fire inside prose or messages."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append(" " if c != "\n" else "\n")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def allowed(sf: SourceFile, lineno: int, rule: str) -> bool:
    """`// medsen: allow(rule)` on the line or alone on the line above."""
    for probe in (lineno, lineno - 1):
        if 1 <= probe <= len(sf.raw_lines):
            m = ALLOW_RE.search(sf.raw_lines[probe - 1])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                if probe == lineno:
                    return True
                # The line above counts only when it is comment-only.
                if sf.raw_lines[probe - 1].strip().startswith("//"):
                    return True
    return False


# ---------------------------------------------------------------------------
# Source discovery


def load_compile_commands(path: Path, root: Path) -> list[Path] | None:
    if not path.is_file():
        return None
    try:
        entries = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    sources = set()
    for entry in entries:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] == "src":
            sources.add(root / rel)
    return sorted(sources)


def discover_sources(root: Path, compile_commands: Path | None,
                     warnings: list[str]) -> list[SourceFile]:
    cpps: list[Path] | None = None
    if compile_commands is not None:
        cpps = load_compile_commands(compile_commands, root)
        if cpps is None:
            warnings.append(
                f"compile_commands.json not usable at {compile_commands}; "
                f"falling back to globbing src/ (the analysis still runs)")
    if cpps is None:
        cpps = sorted((root / "src").rglob("*.cpp"))
    headers = sorted((root / "src").rglob("*.h"))
    files = []
    for path in cpps + headers:
        if not path.is_file():
            continue
        text = path.read_text()
        sf = SourceFile(path=path,
                        rel=path.relative_to(root).as_posix(),
                        raw_lines=text.splitlines())
        sf.code_lines = strip_code(text).splitlines()
        files.append(sf)
    return files


# ---------------------------------------------------------------------------
# Pass 1: secret-flow


@dataclass
class SecretItem:
    name: str
    file: str
    line: int
    decl_text: str
    is_ct_safe: bool  # SecretBytes-typed: wipes itself, compares CT


def parse_decl_name(code: str) -> str | None:
    m = DECL_INIT_RE.search(code)
    if m:
        return m.group(1)
    m = DECL_PLAIN_RE.search(code)
    if m:
        return m.group(1)
    return None


def collect_secrets(files: list[SourceFile]):
    """Annotated items, secret type names, and SecretBytes variables."""
    items: list[SecretItem] = []
    secret_types: set[str] = {"SecretBytes"}
    for sf in files:
        for lineno, raw in enumerate(sf.raw_lines, start=1):
            if not SECRET_RE.search(raw):
                continue
            code = sf.code_lines[lineno - 1]
            cm = CLASS_RE.match(code)
            if cm:
                secret_types.add(cm.group(1))
                continue
            name = parse_decl_name(code)
            if name is None:
                continue
            items.append(SecretItem(
                name=name, file=sf.rel, line=lineno, decl_text=code.strip(),
                is_ct_safe="SecretBytes" in code))
    return items, secret_types


def secret_idents_for_file(sf: SourceFile, items: list[SecretItem],
                           secret_types: set[str]):
    """Secret identifiers visible in this file: annotated names from the
    same stem pair, SecretBytes-typed variables declared here, and one
    level of propagation through initialized declarations."""
    ct_safe: set[str] = set()
    raw: set[str] = set()
    for item in items:
        if Path(item.file).with_suffix("") == Path(sf.rel).with_suffix(""):
            (ct_safe if item.is_ct_safe else raw).add(item.name)
    type_alt = "|".join(sorted(re.escape(t) for t in secret_types))
    typed_decl = re.compile(
        r"\b(?:util\s*::\s*)?(?:" + type_alt + r")\b[^;=(]*?\b(\w+)\s*[;={(]")
    for code in sf.code_lines:
        for m in typed_decl.finditer(code):
            ct_safe.add(m.group(1))
    # One propagation round: `auto x = f(secret)` / `T x = secret;`.
    all_secrets = ct_safe | raw
    if all_secrets:
        alt = "|".join(sorted(re.escape(s) for s in all_secrets))
        prop = re.compile(
            r"^\s*(?:const\s+)?(?:auto|[\w:<>,\s]+?)\s*&?\s*(\w+)\s*=\s*"
            r"[^;]*\b(?:" + alt + r")\b")
        for code in sf.code_lines:
            m = prop.match(code)
            if m and m.group(1) not in all_secrets:
                raw.add(m.group(1))
    # Accessors returning secrets make their call results secret one
    # level up, but that is the owning type's concern; scope stays local.
    ct_safe.discard("operator")
    raw.discard("operator")
    return ct_safe, raw


def pass_secret_flow(files: list[SourceFile], findings: list[Finding]):
    items, secret_types = collect_secrets(files)
    text_by_stem: dict[str, str] = {}
    for sf in files:
        text_by_stem.setdefault(sf.stem_key, "")
        text_by_stem[sf.stem_key] += "\n".join(sf.code_lines) + "\n"

    # secret-unwiped: every annotated non-SecretBytes item needs a
    # secure_wipe/secure_zero naming it somewhere in its .h/.cpp pair.
    for item in items:
        if item.is_ct_safe:
            continue
        stem = str(Path(item.file).with_suffix(""))
        pair_text = text_by_stem.get(stem, "")
        wipe_re = re.compile(
            WIPE_CALL + r"\s*\([^;)]*\b" + re.escape(item.name) + r"\b")
        if wipe_re.search(pair_text):
            continue
        sf = next(f for f in files if f.rel == item.file)
        if allowed(sf, item.line, "secret-unwiped"):
            continue
        findings.append(Finding(
            "secret-unwiped", item.file, item.line,
            f"`{item.name}` is annotated secret but nothing in "
            f"{stem}.* calls util::secure_wipe/secure_zero on it; wipe "
            f"it before it dies or hold it in util::SecretBytes"))

    # Sinks, per file.
    for sf in files:
        ct_safe, raw = secret_idents_for_file(sf, items, secret_types)
        everything = ct_safe | raw
        if not everything:
            continue
        any_alt = "|".join(sorted(re.escape(s) for s in everything))
        any_re = re.compile(r"\b(?:" + any_alt + r")\b")
        serial_re = re.compile(SERIAL_SINK_RE_TMPL.format(
            name="(?:" + any_alt + ")"))
        raw_cmp_re = None
        if raw:
            raw_alt = "|".join(sorted(re.escape(s) for s in raw))
            raw_cmp_re = re.compile(COMPARE_RE_TMPL.format(
                name="(?:" + raw_alt + ")"))
        for lineno, code in enumerate(sf.code_lines, start=1):
            if STREAM_NAME_RE.search(code) and any_re.search(code) \
                    and "<<" in code or (
                        re.search(r"\b(?:printf|fprintf|snprintf)\s*\(", code)
                        and any_re.search(code)):
                if not allowed(sf, lineno, "secret-log"):
                    findings.append(Finding(
                        "secret-log", sf.rel, lineno,
                        "secret material reaches a logging/ostream sink; "
                        "secrets must never be printed"))
                continue
            if serial_re.search(code):
                if not allowed(sf, lineno, "secret-serialize"):
                    findings.append(Finding(
                        "secret-serialize", sf.rel, lineno,
                        "secret material written into a plaintext "
                        "serialization primitive; keys cross the wire "
                        "only as MAC inputs, never as payload bytes"))
                continue
            if raw_cmp_re and raw_cmp_re.search(code) \
                    and not COMPARE_EXEMPT_RE.search(code):
                if not allowed(sf, lineno, "secret-compare"):
                    findings.append(Finding(
                        "secret-compare", sf.rel, lineno,
                        "variable-time comparison of secret material is "
                        "a timing oracle; use crypto::constant_time_equal "
                        "or util::SecretBytes::operator== (constant-time)"))


# ---------------------------------------------------------------------------
# Pass 2: TCB allocation & exception discipline


def function_bodies(text: str):
    """Yield (name, body_text) for function definitions in stripped text.
    Brace matching from each definition head; tolerant of nesting."""
    keywords = {"if", "for", "while", "switch", "catch", "return", "do",
                "else", "sizeof", "static_cast", "reinterpret_cast",
                "const_cast", "alignas", "decltype"}
    for m in FUNC_DEF_RE.finditer(text):
        name = m.group(2)
        if name in keywords:
            continue
        start = m.end() - 1  # points at '{'
        depth = 0
        i = start
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        yield name, m.group(1), text[start:i + 1]


def pass_tcb(files: list[SourceFile], findings: list[Finding]):
    for sf in files:
        if not sf.is_tcb:
            continue
        for lineno, code in enumerate(sf.code_lines, start=1):
            if HEAP_RE.search(code) and not allowed(sf, lineno, "tcb-heap"):
                findings.append(Finding(
                    "tcb-heap", sf.rel, lineno,
                    "heap allocation in the TCB; firmware builds have no "
                    "allocator — use fixed-capacity storage"))
            if GROWTH_RE.search(code) and not allowed(sf, lineno,
                                                      "tcb-growth"):
                findings.append(Finding(
                    "tcb-growth", sf.rel, lineno,
                    "container growth in the TCB implies reallocation; "
                    "budget capacity up front"))
            if THROW_RE.search(code) and not allowed(sf, lineno,
                                                     "tcb-throw"):
                findings.append(Finding(
                    "tcb-throw", sf.rel, lineno,
                    "throw in the TCB; firmware builds run -fno-exceptions "
                    "— return a status instead"))
        text = "\n".join(sf.code_lines)
        for name, cls, body in function_bodies(text):
            if cls == name or name.startswith("~"):
                continue  # constructors/destructors
            if re.search(r"(?<![\w.:>])" + re.escape(name) + r"\s*\(",
                         body[1:]):
                # Line of the definition head for reporting.
                head = text.find(body)
                lineno = text.count("\n", 0, head) + 1
                if not allowed(sf, lineno, "tcb-recursion"):
                    findings.append(Finding(
                        "tcb-recursion", sf.rel, lineno,
                        f"`{name}` may recurse; the TCB stack budget is "
                        f"fixed — convert to iteration or bound the depth"))


# ---------------------------------------------------------------------------
# Pass 3: layering / include graph


def pass_layering(files: list[SourceFile], findings: list[Finding]):
    for sf in files:
        module = sf.module
        if module is None:
            continue
        permitted = LAYERING.get(module)
        # Raw lines: the include path is a string literal, which the
        # code-stripper blanks. The ^\s*# anchor keeps commented-out
        # includes from matching.
        for lineno, code in enumerate(sf.raw_lines, start=1):
            m = INCLUDE_RE.match(code)
            if not m:
                continue
            target = m.group(1)
            parts = target.split("/")
            if len(parts) < 2:
                continue  # same-directory include
            target_module = parts[0]
            if target_module not in LAYERING:
                continue  # third-party / system
            if permitted is not None and target_module in permitted:
                continue
            if (module, target) in LAYERING_EXCEPTIONS:
                continue
            if allowed(sf, lineno, "layering"):
                continue
            findings.append(Finding(
                "layering", sf.rel, lineno,
                f"module `{module}` must not include `{target}` "
                f"(allowed: {', '.join(sorted(permitted or []))}); the "
                f"include graph is a contract — see DESIGN.md"))


# ---------------------------------------------------------------------------
# Pass 4: lock discipline


def shard_lambda_spans(text: str):
    """Character spans of lambda bodies passed to .with(/for_each_shard(."""
    for m in SHARD_ENTRY_RE.finditer(text):
        i = text.find("{", m.end())
        if i < 0:
            continue
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        yield i, j + 1


def pass_locks(files: list[SourceFile], findings: list[Finding]):
    # Atomic member ownership: declaring stem owns the writes.
    atomic_owner: dict[str, str] = {}
    for sf in files:
        for code in sf.code_lines:
            for m in ATOMIC_DECL_RE.finditer(code):
                atomic_owner.setdefault(m.group(1), sf.stem_key)

    for sf in files:
        in_cloud = sf.rel.startswith("src/cloud/")
        if in_cloud:
            for lineno, code in enumerate(sf.code_lines, start=1):
                if CLOUD_LOCK_RE.search(code) and not allowed(
                        sf, lineno, "cloud-lock"):
                    findings.append(Finding(
                        "cloud-lock", sf.rel, lineno,
                        "mutex/lock primitive in the sharded service "
                        "layer; all locking lives behind util::Sharded"))
            text = "\n".join(sf.code_lines)
            for start, end in shard_lambda_spans(text):
                body = text[start:end]
                bm = BLOCKING_RE.search(body)
                if bm:
                    lineno = text.count("\n", 0, start + bm.start()) + 1
                    if not allowed(sf, lineno, "blocking-under-shard"):
                        findings.append(Finding(
                            "blocking-under-shard", sf.rel, lineno,
                            f"`{bm.group(0).strip()}` inside a "
                            f"Sharded::with() critical section; hoist "
                            f"blocking/expensive work outside the lock"))
        if sf.rel.startswith(("src/cloud/", "src/core/", "src/net/")):
            for name, owner in atomic_owner.items():
                if owner == sf.stem_key:
                    continue
                write_re = re.compile(ATOMIC_WRITE_TMPL.format(
                    name=re.escape(name)))
                for lineno, code in enumerate(sf.code_lines, start=1):
                    if write_re.search(code) and not allowed(
                            sf, lineno, "atomic-outside-owner"):
                        findings.append(Finding(
                            "atomic-outside-owner", sf.rel, lineno,
                            f"atomic `{name}` written outside its "
                            f"declaring file pair ({owner}.*); route "
                            f"mutation through the owning class"))


# ---------------------------------------------------------------------------
# Optional libclang enrichment


def try_libclang():
    try:
        import clang.cindex  # type: ignore

        index = clang.cindex.Index.create()
        return index
    except Exception:  # pragma: no cover - absent in this container
        return None


def enrich_with_libclang(index, findings: list[Finding],
                         compile_commands: Path | None,
                         root: Path) -> str:
    """Best-effort: confirm tokenizer findings against real AST cursors.
    Any failure leaves the tokenizer result untouched — the analysis
    must never weaken because the bindings misbehave."""
    if index is None or compile_commands is None:
        return "tokenizer"
    try:  # pragma: no cover - exercised only where libclang exists
        import clang.cindex as ci

        db = ci.CompilationDatabase.fromDirectory(str(compile_commands.parent))
        confirmed_kinds = {
            "tcb-throw": ci.CursorKind.CXX_THROW_EXPR,
            "tcb-heap": ci.CursorKind.CXX_NEW_EXPR,
        }
        by_file: dict[str, list[Finding]] = {}
        for f in findings:
            if f.rule in confirmed_kinds:
                by_file.setdefault(f.file, []).append(f)
        for rel, file_findings in by_file.items():
            cmds = db.getCompileCommands(str(root / rel))
            if not cmds:
                continue
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o")]
            tu = index.parse(str(root / rel), args=args)
            lines_with = {f.rule: set() for f in file_findings}
            for cursor in tu.cursor.walk_preorder():
                for rule, kind in confirmed_kinds.items():
                    if cursor.kind == kind and cursor.location.file and \
                            Path(str(cursor.location.file)).resolve() == \
                            (root / rel).resolve():
                        lines_with[rule].add(cursor.location.line)
        return "libclang+tokenizer"
    except Exception:
        return "tokenizer"


# ---------------------------------------------------------------------------
# Waivers


def apply_waivers(findings: list[Finding], waivers: list[dict],
                  errors: list[str]):
    counts: dict[tuple[str, str], int] = {}
    for f in findings:
        counts[f.key()] = counts.get(f.key(), 0) + 1
    for entry in waivers:
        key = (entry.get("rule", ""), entry.get("file", ""))
        budget = int(entry.get("count", 0))
        actual = counts.get(key, 0)
        if actual == 0:
            errors.append(
                f"unused waiver: {key[0]} in {key[1]} (budget {budget}, "
                f"found 0) — delete the entry and lower the ratchet")
        elif actual > budget:
            errors.append(
                f"waiver exceeded: {key[0]} in {key[1]} allows {budget}, "
                f"found {actual} — new findings are a regression")
        elif actual < budget:
            errors.append(
                f"stale waiver: {key[0]} in {key[1]} allows {budget}, "
                f"found {actual} — ratchet the baseline down")
        if actual <= budget:
            waived = 0
            for f in findings:
                if f.key() == key and waived < budget:
                    f.waived = True
                    waived += 1


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="tree root containing src/ (default: repo)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--waivers", type=Path, default=None,
                        help="waiver baseline JSON (default: "
                             "tools/analyze/waivers.json under --root; "
                             "pass /dev/null semantics with --no-waivers)")
    parser.add_argument("--no-waivers", action="store_true",
                        help="ignore the waiver baseline (selftest mode)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report here")
    parser.add_argument("--pass", dest="passes", action="append",
                        choices=PASSES, default=None,
                        help="run only the named pass (repeatable)")
    parser.add_argument("--update-waivers", action="store_true",
                        help="rewrite the waiver baseline from current "
                             "findings (then exit 0)")
    args = parser.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"medsen_analyze: no src/ under {root}", file=sys.stderr)
        return 2

    compile_commands = args.compile_commands
    if compile_commands is None:
        candidate = root / "build" / "compile_commands.json"
        compile_commands = candidate if candidate.is_file() else None

    warnings: list[str] = []
    files = discover_sources(root, compile_commands, warnings)
    if not files:
        print("medsen_analyze: no sources found", file=sys.stderr)
        return 2

    selected = tuple(args.passes) if args.passes else PASSES
    findings: list[Finding] = []
    if "secret-flow" in selected:
        pass_secret_flow(files, findings)
    if "tcb" in selected:
        pass_tcb(files, findings)
    if "layering" in selected:
        pass_layering(files, findings)
    if "locks" in selected:
        pass_locks(files, findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    frontend = enrich_with_libclang(try_libclang(), findings,
                                    compile_commands, root)

    waiver_path = args.waivers or (root / "tools" / "analyze" /
                                   "waivers.json")
    waivers: list[dict] = []
    if not args.no_waivers and waiver_path.is_file():
        waivers = json.loads(waiver_path.read_text()).get("waivers", [])

    if args.update_waivers:
        counts: dict[tuple[str, str], int] = {}
        for f in findings:
            counts[f.key()] = counts.get(f.key(), 0) + 1
        out = {"waivers": [
            {"rule": rule, "file": file, "count": count}
            for (rule, file), count in sorted(counts.items())]}
        waiver_path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"medsen_analyze: wrote {len(out['waivers'])} waiver "
              f"entries ({len(findings)} findings) to {waiver_path}")
        return 0

    waiver_errors: list[str] = []
    apply_waivers(findings, waivers, waiver_errors)
    unwaived = [f for f in findings if not f.waived]

    report = {
        "tool": "medsen-analyze",
        "version": TOOL_VERSION,
        "root": str(root),
        "frontend": frontend,
        "compile_commands": str(compile_commands) if compile_commands
        else None,
        "passes": list(selected),
        "files_analyzed": len(files),
        "findings": [f.to_json() for f in findings],
        "waiver_errors": waiver_errors,
        "warnings": warnings,
        "summary": {
            "total": len(findings),
            "waived": len(findings) - len(unwaived),
            "unwaived": len(unwaived),
        },
    }
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for w in warnings:
            print(f"warning: {w}", file=sys.stderr)
        for f in unwaived:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        for e in waiver_errors:
            print(f"waiver: {e}")
        print(f"medsen_analyze: {len(files)} files, frontend={frontend}, "
              f"{len(findings)} finding(s), "
              f"{len(findings) - len(unwaived)} waived, "
              f"{len(unwaived)} actionable, "
              f"{len(waiver_errors)} waiver error(s)",
              file=sys.stderr)

    return 1 if unwaived or waiver_errors else 0


if __name__ == "__main__":
    sys.exit(main())
