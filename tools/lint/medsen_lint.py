#!/usr/bin/env python3
"""MedSen invariant linter.

Enforces project-specific correctness contracts that generic tooling
(clang-tidy, sanitizers) cannot express:

  determinism       No wall-clock or ambient-entropy calls (rand,
                    random_device, system_clock, time(), ...) in the
                    deterministic subsystems `src/sim`, `src/core`,
                    `src/cloud`. Bit-identical replay of an acquisition
                    is part of the security argument: the sensor-side
                    key schedule and the cloud analysis must agree on
                    every bit, so ambient entropy is confined to
                    explicitly seeded RNGs and the SimulatedClock.

  decoder-tests     Every wire decoder (a function named `deserialize*`
                    or `*_decode` declared in a public header) must have
                    a test that rejects trailing bytes. Strict decoding
                    is the cloud's first line of defense against a
                    hostile relay; a decoder nobody fuzzes for trailing
                    garbage regresses silently.

  unordered-serial  No iteration over an unordered container feeding
                    serialized output. Hash-map order is
                    implementation-defined, so such loops break the
                    bit-deterministic wire format.

  fault-stream      The fault-injection API (src/sim/faults.h) must
                    draw every realization from its own streams built
                    from FaultConfig::seed: no public signature may
                    accept a `ChaChaRng&` from a caller. Sharing the
                    base simulation's RNG would advance it, perturbing
                    the particle arrivals and noise whenever a fault is
                    toggled — and the faults-disabled golden outputs are
                    required to be bit-identical. (Internal helpers in
                    faults.cpp may pass locally built fault streams.)

  cloud-mutex       No `std::mutex` (or timed/recursive/shared variants)
                    members or globals in `src/cloud`. The service layer
                    is sharded: all locking lives behind util::Sharded's
                    per-shard mutexes, and counters are relaxed atomics.
                    A stray mutex member reintroduces exactly the
                    process-wide serialization point the sharding refactor
                    removed, and it does so silently — throughput decays,
                    nothing fails. (util::Sharded itself lives in
                    src/util, outside the rule's scope.)

  ct-compare        No variable-time comparison of MAC/key material in
                    `src/crypto`, `src/cloud`, `src/net`: memcmp() and
                    ==/!= on identifiers that look like secrets (mac,
                    digest, proof, tag, *_key) are banned. Early-exit
                    comparison is a byte-granular timing oracle on the
                    very tags that authenticate the untrusted relay's
                    traffic; every verifier must route through
                    crypto::constant_time_equal (or digest_equal, which
                    delegates to it). Container self-management
                    (`key != keys.end()`, `== nullptr`) is out of scope.

  dsp-transcendental
                    No std::sin/std::cos inside loop bodies in the DSP
                    kernel files (src/dsp demod/oscillator/detrend/
                    polyfit/peak_detect/filters). The analysis hot path
                    generates reference carriers with the PhaseOscillator
                    rotation recurrence; a per-sample libm trig call is a
                    ~20x slowdown that creeps back in silently. The
                    oscillator's block-cadence resync (every 256 samples)
                    is the sanctioned exception and carries an allow
                    comment. Trig-heavy modules that are not sample
                    kernels (fft.cpp twiddles, noise.cpp) are out of
                    scope.

  durable-write     No direct file writes (std::ofstream, std::fstream,
                    fopen/FILE*) in `src/cloud`. Every byte the service
                    persists must flow through the crash-safe helpers —
                    the WAL (cloud::Journal on util::DurableFile) or
                    util::write_file_atomic — so a power cut can never
                    leave a half-written live file. A raw ofstream write
                    reintroduces exactly the torn-state bug class the
                    durability layer closed, and it passes every test
                    that doesn't crash mid-write.

Suppress a finding by appending `// medsen-lint: allow(<rule>)` to the
offending line, where <rule> is one of: determinism, decoder-tests,
unordered-serial, fault-stream, cloud-mutex, dsp-transcendental,
ct-compare, durable-write.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors. Run from anywhere: `python3 tools/lint/medsen_lint.py [--root DIR]`.
`--format=json` emits a machine-readable report (stable rule ids in the
`rule` field) for CI artifact upload; `--output FILE` writes the JSON
report to a file regardless of the console format.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

DETERMINISTIC_DIRS = ("src/sim", "src/core", "src/cloud")

# Ambient entropy / wall-clock tokens banned in deterministic subsystems.
# `time(` needs care: `start_time(`, `.time(` and `time_series` are all
# legitimate, so the pattern requires a true call of the free function.
DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w.:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.:])srand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bgetentropy\b"), "getentropy()"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
]

# The fault layer must own its RNG streams (seeded from FaultConfig::seed);
# a public signature accepting a caller's ChaChaRng would let fault draws
# advance the base simulation's stream. The header is the contract; the
# .cpp may pass locally built fault streams between internal helpers.
FAULT_STREAM_FILES = ("src/sim/faults.h",)
FAULT_STREAM_PARAM = re.compile(r"ChaChaRng\s*&")

DECODER_DECL = re.compile(
    r"\b(?P<name>deserialize(?:_[a-z0-9_]+)?|[a-z0-9_]+_decode)\s*\(")

CLASS_DECL = re.compile(r"^\s*(?:class|struct)\s+(?P<name>\w+)")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(?P<name>\w+)\s*[;{=]")

RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*(?P<seq>[\w.\->]+)\s*\)")

# Writing into the wire format: ByteWriter primitives or serialize calls.
SERIAL_SINK = re.compile(
    r"ByteWriter|serialize|\.u8\(|\.u16\(|\.u32\(|\.u64\(|\.f64\(|"
    r"\.blob\(|\.str\(|\.bytes\(|frame_encode")

# A mutex-flavored member/global declaration in the sharded service
# layer: `std::mutex m_;`, `mutable std::shared_mutex lock;`, etc.
# Matching the declaration (type then identifier then ; or {}) skips
# lock_guard/unique_lock *uses*, which name the type in template args.
CLOUD_MUTEX_DIRS = ("src/cloud",)
CLOUD_MUTEX_DECL = re.compile(
    r"\bstd\s*::\s*(?:timed_|recursive_|shared_)*mutex\b"
    r"\s+\w+\s*(?:;|\{\s*\})")

# Secret-bearing comparison sites: memcmp anywhere in the security
# plane, and ==/!= where either operand names MAC/key material. The
# identifier heuristic intentionally skips iterator/pointer idioms
# (`!= keys.end()`, `== nullptr`) and size fields (`mac_key.size()`).
CT_COMPARE_DIRS = ("src/crypto", "src/cloud", "src/net")
CT_MEMCMP = re.compile(r"(?<![\w.:])(?:std\s*::\s*)?memcmp\s*\(")
CT_SECRET_NAME = (
    r"[A-Za-z_]*(?:mac|digest|proof|tag)[A-Za-z0-9_]*|[A-Za-z_]\w*_key\w*")
CT_SECRET_CMP = re.compile(
    r"(?:(?:" + CT_SECRET_NAME + r")(?:\.\w+)*\s*[=!]=|"
    r"[=!]=\s*(?:" + CT_SECRET_NAME + r")\b)")
CT_CMP_EXEMPT = re.compile(
    r"[=!]=\s*(?:nullptr|NULL\b)|\.(?:end|begin|size|empty|length)\s*\(|"
    r"\.has_value\s*\(|[=!]=\s*0\b")

# Direct file-write primitives banned in the durable service layer:
# persistence must ride cloud::Journal / util::write_file_atomic, which
# own the fsync + rename discipline. std::ifstream is allowed — reading
# cannot tear state — but std::fstream is not (it opens for writing).
DURABLE_WRITE_DIRS = ("src/cloud",)
DURABLE_WRITE_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*w?(?:of|f)stream\b"),
     "std::ofstream/std::fstream"),
    (re.compile(r"(?<![\w.:])fopen\s*\("), "fopen()"),
    (re.compile(r"\bFILE\s*\*"), "FILE*"),
]

# DSP sample-kernel files where per-sample trig is banned inside loops.
# FFT twiddle factors and noise synthesis are inherently trigonometric
# and deliberately out of scope.
DSP_KERNEL_FILES = (
    "src/dsp/oscillator.h", "src/dsp/oscillator.cpp",
    "src/dsp/filters.h", "src/dsp/filters.cpp",
    "src/dsp/demod.h", "src/dsp/demod.cpp",
    "src/dsp/detrend.h", "src/dsp/detrend.cpp",
    "src/dsp/polyfit.h", "src/dsp/polyfit.cpp",
    "src/dsp/peak_detect.h", "src/dsp/peak_detect.cpp",
)
TRIG_CALL = re.compile(r"\bstd\s*::\s*(?:sin|cos)\s*\(")
LOOP_HEAD = re.compile(r"\b(?:for|while)\s*\(")
LOOP_TOKEN = re.compile(r"\b(?:for|while)\s*\(|[{}]")

ALLOW = re.compile(r"//\s*medsen-lint:\s*allow\((?P<rules>[\w\-, ]+)\)")

# The canonical finding format every check emits; parsed back into
# structured records for --format=json. Rule ids are stable API.
FINDING_LINE = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[\w\-]+)\] "
    r"(?P<message>.*)$", re.DOTALL)

RULE_IDS = ("determinism", "decoder-tests", "unordered-serial",
            "fault-stream", "cloud-mutex", "ct-compare",
            "dsp-transcendental", "durable-write")

TEST_BLOCK = re.compile(r"^TEST(?:_F|_P)?\s*\(", re.MULTILINE)


def allowed(line: str, rule: str) -> bool:
    m = ALLOW.search(line)
    return bool(m) and rule in [r.strip() for r in m.group("rules").split(",")]


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string literals and // comments so banned
    tokens inside log messages or comments do not trip the linter."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def check_determinism(root: Path, findings: list[str]) -> None:
    for sub in DETERMINISTIC_DIRS:
        for path in sorted((root / sub).rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            for lineno, raw in enumerate(
                    path.read_text().splitlines(), start=1):
                if allowed(raw, "determinism"):
                    continue
                code = strip_comments_and_strings(raw)
                for pattern, label in DETERMINISM_PATTERNS:
                    if pattern.search(code):
                        findings.append(
                            f"{path.relative_to(root)}:{lineno}: "
                            f"[determinism] {label} in a deterministic "
                            f"subsystem; use the seeded RNG / "
                            f"SimulatedClock utilities")


def check_fault_streams(root: Path, findings: list[str]) -> None:
    for rel in FAULT_STREAM_FILES:
        path = root / rel
        if not path.is_file():
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            if allowed(raw, "fault-stream"):
                continue
            if FAULT_STREAM_PARAM.search(strip_comments_and_strings(raw)):
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: [fault-stream] "
                    f"the fault API must not take a ChaChaRng& — build "
                    f"its own stream from FaultConfig::seed so fault draws "
                    f"never advance the base simulation's RNG")


def check_cloud_mutex(root: Path, findings: list[str]) -> None:
    for sub in CLOUD_MUTEX_DIRS:
        for path in sorted((root / sub).rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            for lineno, raw in enumerate(
                    path.read_text().splitlines(), start=1):
                if allowed(raw, "cloud-mutex"):
                    continue
                if CLOUD_MUTEX_DECL.search(strip_comments_and_strings(raw)):
                    findings.append(
                        f"{path.relative_to(root)}:{lineno}: [cloud-mutex] "
                        f"std::mutex member in the sharded service layer; "
                        f"route state through util::Sharded (per-shard "
                        f"locks) or use relaxed atomics for counters")


def check_ct_compare(root: Path, findings: list[str]) -> None:
    for sub in CT_COMPARE_DIRS:
        for path in sorted((root / sub).rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            for lineno, raw in enumerate(
                    path.read_text().splitlines(), start=1):
                if allowed(raw, "ct-compare"):
                    continue
                code = strip_comments_and_strings(raw)
                if CT_MEMCMP.search(code):
                    findings.append(
                        f"{path.relative_to(root)}:{lineno}: [ct-compare] "
                        f"memcmp in the security plane is a byte-granular "
                        f"timing oracle; compare MAC/key material with "
                        f"crypto::constant_time_equal")
                    continue
                if CT_SECRET_CMP.search(code) and not CT_CMP_EXEMPT.search(
                        code):
                    findings.append(
                        f"{path.relative_to(root)}:{lineno}: [ct-compare] "
                        f"==/!= on MAC/key material leaks a timing oracle; "
                        f"use crypto::constant_time_equal (or digest_equal)")


def check_durable_write(root: Path, findings: list[str]) -> None:
    for sub in DURABLE_WRITE_DIRS:
        for path in sorted((root / sub).rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            for lineno, raw in enumerate(
                    path.read_text().splitlines(), start=1):
                if allowed(raw, "durable-write"):
                    continue
                code = strip_comments_and_strings(raw)
                for pattern, label in DURABLE_WRITE_PATTERNS:
                    if pattern.search(code):
                        findings.append(
                            f"{path.relative_to(root)}:{lineno}: "
                            f"[durable-write] {label} in the durable "
                            f"service layer; persist through "
                            f"cloud::Journal or util::write_file_atomic "
                            f"so a crash can never tear a live file")


def check_dsp_transcendental(root: Path, findings: list[str]) -> None:
    """Flag std::sin/std::cos inside loop bodies of DSP kernel files.

    Brace-depth tracking: a loop head (`for (`/`while (`) arms a pending
    marker; the next `{` pushes the loop body's depth. A trig call while
    any loop body is open (or on a loop-head / braceless-body line) is a
    finding unless the line carries an allow comment.
    """
    for rel in DSP_KERNEL_FILES:
        path = root / rel
        if not path.is_file():
            continue
        depth = 0
        loop_stack: list[int] = []  # depths at which loop bodies opened
        pending = 0                 # loop heads awaiting their open brace
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            code = strip_comments_and_strings(raw)
            in_loop = bool(loop_stack) or pending or LOOP_HEAD.search(code)
            if (TRIG_CALL.search(code) and in_loop
                    and not allowed(raw, "dsp-transcendental")):
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"[dsp-transcendental] per-sample std::sin/std::cos "
                    f"in a DSP kernel loop; use the PhaseOscillator "
                    f"recurrence (block-cadence resyncs may carry "
                    f"`// medsen-lint: allow(dsp-transcendental)`)")
            for m in LOOP_TOKEN.finditer(code):
                tok = m.group(0)
                if tok == "{":
                    depth += 1
                    if pending:
                        loop_stack.append(depth)
                        pending -= 1
                elif tok == "}":
                    if loop_stack and loop_stack[-1] == depth:
                        loop_stack.pop()
                    depth -= 1
                else:
                    pending += 1
            if pending and "{" not in code:
                # A braceless single-statement body ends at `;` outside
                # the loop-head parentheses.
                flat = code
                while True:
                    reduced = re.sub(r"\([^()]*\)", "", flat)
                    if reduced == flat:
                        break
                    flat = reduced
                if ";" in flat:
                    pending = 0


def collect_decoders(root: Path) -> list[tuple[Path, int, str]]:
    """Find (header, line, qualified-callname) for every public decoder."""
    decoders = []
    for path in sorted((root / "src").rglob("*.h")):
        enclosing: list[tuple[str, int]] = []  # (class name, depth at open)
        depth = 0
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            code = strip_comments_and_strings(raw)
            m = CLASS_DECL.match(code)
            if m and "{" in code and ";" not in code.split("{", 1)[0]:
                enclosing.append((m.group("name"), depth))
            dm = DECODER_DECL.search(code)
            if dm and not allowed(raw, "decoder-tests"):
                name = dm.group("name")
                if enclosing and name == "deserialize":
                    callname = f"{enclosing[-1][0]}::deserialize"
                else:
                    callname = name
                decoders.append((path, lineno, callname))
            depth += code.count("{") - code.count("}")
            while enclosing and depth <= enclosing[-1][1]:
                enclosing.pop()
    return decoders


def check_decoder_tests(root: Path, findings: list[str]) -> None:
    test_blocks: list[str] = []
    for path in sorted((root / "tests").rglob("*.cpp")):
        text = path.read_text()
        starts = [m.start() for m in TEST_BLOCK.finditer(text)]
        for i, start in enumerate(starts):
            end = starts[i + 1] if i + 1 < len(starts) else len(text)
            test_blocks.append(text[start:end])
    for path, lineno, callname in collect_decoders(root):
        covered = any(
            callname in block and re.search(r"trailing", block, re.IGNORECASE)
            for block in test_blocks)
        if not covered:
            findings.append(
                f"{path.relative_to(root)}:{lineno}: [decoder-tests] "
                f"`{callname}` has no trailing-bytes rejection test; add a "
                f"TEST that feeds it valid bytes plus appended garbage and "
                f"expects a throw")


def check_unordered_serialization(root: Path, findings: list[str]) -> None:
    # Names declared with an unordered container type, scoped per file
    # stem: a member declared in foo.h is visible to foo.h and foo.cpp.
    # (Member names repeat across classes — `keys_` is an unordered map
    # in the device registry but a vector in the key schedule — so a
    # repo-wide name pool would cross wires.)
    sources = [p for p in sorted((root / "src").rglob("*"))
               if p.suffix in (".h", ".cpp")]
    names_by_stem: dict[Path, set[str]] = {}
    for path in sources:
        for raw in path.read_text().splitlines():
            m = UNORDERED_DECL.search(strip_comments_and_strings(raw))
            if m:
                names_by_stem.setdefault(
                    path.parent / path.stem, set()).add(m.group("name"))
    if not names_by_stem:
        return
    for path in sources:
        unordered_names = names_by_stem.get(path.parent / path.stem, set())
        if not unordered_names:
            continue
        lines = path.read_text().splitlines()
        for lineno, raw in enumerate(lines, start=1):
            if allowed(raw, "unordered-serial"):
                continue
            m = RANGE_FOR.search(strip_comments_and_strings(raw))
            if not m:
                continue
            seq = m.group("seq").split(".")[-1].split(">")[-1]
            if seq not in unordered_names:
                continue
            # Does the loop feed the wire format? Look at the loop body
            # (a window is enough: serialization loops are short).
            body = "\n".join(lines[lineno - 1:lineno + 14])
            if SERIAL_SINK.search(body):
                findings.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"[unordered-serial] iteration over unordered "
                    f"container `{seq}` feeds serialized output; hash "
                    f"order is not deterministic — sort first or use an "
                    f"ordered container")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--list-decoders", action="store_true",
                        help="print discovered decoders and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="console output format (default: text)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this file")
    args = parser.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"medsen_lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.list_decoders:
        for path, lineno, callname in collect_decoders(root):
            print(f"{path.relative_to(root)}:{lineno}: {callname}")
        return 0

    findings: list[str] = []
    check_determinism(root, findings)
    check_cloud_mutex(root, findings)
    check_fault_streams(root, findings)
    check_ct_compare(root, findings)
    check_durable_write(root, findings)
    check_dsp_transcendental(root, findings)
    check_decoder_tests(root, findings)
    check_unordered_serialization(root, findings)

    structured = []
    for finding in findings:
        m = FINDING_LINE.match(finding)
        if m:
            structured.append({
                "rule": m.group("rule"),
                "file": m.group("file"),
                "line": int(m.group("line")),
                "message": m.group("message"),
            })
        else:  # never expected; keep the finding visible regardless
            structured.append({"rule": "unknown", "file": "", "line": 0,
                               "message": finding})
    report = {
        "tool": "medsen-lint",
        "rules": list(RULE_IDS),
        "findings": structured,
        "summary": {"total": len(structured)},
    }
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"medsen_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "text":
        print("medsen_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
