#!/usr/bin/env python3
"""Regression floor check for the DSP analysis-path bench artifacts.

Validates BENCH_fig14_analysis_perf.json and BENCH_streaming_analysis.json
(from the --smoke presets) against the checked-in floors in
tools/bench/dsp_floor.json. The floors are deliberately conservative —
roughly a quarter of the single-core container measurement — so the
check catches structural regressions (a per-sample std::sin creeping
back into a kernel, a per-request allocation storm), not runner jitter.

Also enforces the streaming correctness invariant carried by the
artifact: streamed and pipelined peak counts must equal the batch count.

Usage: check_dsp_floor.py ARTIFACT.json [ARTIFACT.json ...]
                          [--floor FLOOR.json]
Exit status: 0 ok, 1 regression or malformed artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check_counters(bench: str, counters: dict, floors: dict,
                   tolerance: float) -> list[str]:
    failures = []
    for key, baseline in floors.items():
        if key not in counters:
            failures.append(f"{bench}: missing counter {key!r}")
            continue
        value = float(counters[key])
        minimum = float(baseline) * (1.0 - tolerance)
        print(f"{bench}: {key} = {value:.0f} "
              f"(floor {float(baseline):.0f}, minimum after "
              f"{tolerance:.0%} tolerance: {minimum:.0f})")
        if value < minimum:
            failures.append(
                f"{bench}: REGRESSION — {key} = {value:.0f} is more than "
                f"{tolerance:.0%} below the {float(baseline):.0f} floor")
    return failures


def check_peak_parity(counters: dict) -> list[str]:
    """Every streaming workload's stream/pipe peak counts must match batch."""
    failures = []
    for key, value in counters.items():
        if not key.endswith(".batch_peaks"):
            continue
        prefix = key[: -len("batch_peaks")]
        batch = int(value)
        for mode in ("stream_peaks", "pipe_peaks"):
            other = counters.get(prefix + mode)
            if other is None or int(other) != batch:
                failures.append(
                    f"streaming_analysis: {prefix}{mode} = {other} does not "
                    f"match {key} = {batch} — streaming lost or duplicated "
                    f"peaks")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", type=Path, nargs="+",
                        help="BENCH_*.json files from the smoke runs")
    parser.add_argument("--floor", type=Path,
                        default=Path(__file__).with_name("dsp_floor.json"))
    args = parser.parse_args()

    try:
        floor = json.loads(args.floor.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_dsp_floor: cannot read floor file: {err}",
              file=sys.stderr)
        return 1
    tolerance = float(floor.get("allowed_regression", 0.25))

    failures: list[str] = []
    checked = set()
    for artifact_path in args.artifacts:
        try:
            artifact = json.loads(artifact_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"check_dsp_floor: cannot read {artifact_path}: {err}",
                  file=sys.stderr)
            return 1
        bench = artifact.get("bench")
        counters = artifact.get("counters", {})
        if bench not in floor or not isinstance(floor[bench], dict):
            failures.append(
                f"{artifact_path}: no floors for bench {bench!r}")
            continue
        checked.add(bench)
        failures += check_counters(bench, counters, floor[bench], tolerance)
        if bench == "streaming_analysis":
            failures += check_peak_parity(counters)

    expected = {k for k, v in floor.items() if isinstance(v, dict)}
    for bench in sorted(expected - checked):
        failures.append(f"check_dsp_floor: no artifact supplied for "
                        f"{bench!r}")

    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    print("check_dsp_floor: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
