#!/usr/bin/env python3
"""Gate check for the crash_chaos bench artifact.

Two kinds of assertion over BENCH_crash_chaos.json:

  correctness   Every durability invariant counter must be exactly zero
                (an acked record lost, a ghost record resurrected, a
                counter rewound, a secret on disk — any of these is a
                real recovery bug, never jitter), and the sweep must
                actually have discovered crash sites and fired crashes,
                or the harness silently tested nothing.

  recovery time The replay cost per 1k journal records must stay below
                the checked-in ceiling (tools/bench/crash_chaos_floor.json)
                with a generous tolerance. Replay is a startup cost, so
                this is a ceiling, not a floor: it catches an accidental
                O(n^2) in recovery (e.g. re-scanning the journal per
                record), not container jitter.

Usage: check_crash_floor.py BENCH_crash_chaos.json [--floor FLOOR.json]
Exit status: 0 ok, 1 violation or malformed artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

INVARIANT_KEYS = (
    "invariants.acked_lost",
    "invariants.ghost_records",
    "invariants.duplicate_auth",
    "invariants.counter_rewinds",
    "invariants.secret_leaks",
    "invariants.nonce_reuse",
    "invariants.recovery_errors",
    "invariants.total_failures",
)

REQUIRED_KEYS = INVARIANT_KEYS + (
    "sites_discovered",
    "sweep.runs",
    "sweep.crashes_fired",
    "recovery.records_replayed",
    "recovery.ms_per_1k_records",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path,
                        help="BENCH_crash_chaos.json from the smoke run")
    parser.add_argument("--floor", type=Path,
                        default=Path(__file__).with_name(
                            "crash_chaos_floor.json"))
    args = parser.parse_args()

    try:
        artifact = json.loads(args.artifact.read_text())
        floor = json.loads(args.floor.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_crash_floor: cannot read inputs: {err}",
              file=sys.stderr)
        return 1

    counters = artifact.get("counters", {})
    missing = [key for key in REQUIRED_KEYS if key not in counters]
    if artifact.get("bench") != "crash_chaos" or missing:
        print(f"check_crash_floor: malformed artifact "
              f"(bench={artifact.get('bench')!r}, missing={missing})",
              file=sys.stderr)
        return 1

    failed = False

    # Correctness: zero tolerance on every invariant counter.
    for key in INVARIANT_KEYS:
        value = int(counters[key])
        if value != 0:
            print(f"check_crash_floor: INVARIANT VIOLATED — {key} = "
                  f"{value} (must be 0)", file=sys.stderr)
            failed = True

    # Coverage: the sweep must have found sites and actually crashed.
    min_sites = int(floor.get("min_crash_sites", 10))
    sites = int(counters["sites_discovered"])
    crashes = int(counters["sweep.crashes_fired"])
    print(f"sites_discovered {sites} (minimum {min_sites}), "
          f"sweep crashes fired {crashes}")
    if sites < min_sites:
        print(f"check_crash_floor: only {sites} crash sites discovered — "
              f"persistence boundaries lost their crash points",
              file=sys.stderr)
        failed = True
    if crashes == 0:
        print("check_crash_floor: the sweep fired no crashes — the "
              "harness tested nothing", file=sys.stderr)
        failed = True

    # Recovery time: ceiling on replay cost per 1k records.
    ceiling = float(floor["replay_ms_per_1k_ceiling"])
    tolerance = float(floor.get("allowed_regression", 1.0))
    measured = float(counters["recovery.ms_per_1k_records"])
    maximum = ceiling * (1.0 + tolerance)
    print(f"recovery.ms_per_1k_records {measured:.2f} ms "
          f"(ceiling {ceiling:.2f}, maximum after {tolerance:.0%} "
          f"tolerance: {maximum:.2f})")
    if measured > maximum:
        print(f"check_crash_floor: REGRESSION — replay costs "
              f"{measured:.2f} ms per 1k records, more than "
              f"{tolerance:.0%} above the {ceiling:.2f} ms ceiling",
              file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("check_crash_floor: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
