#!/usr/bin/env python3
"""Regression floor check for the fleet_load bench artifact.

Compares the smoke run's throughput against the checked-in floor
(tools/bench/fleet_load_floor.json) and fails when it regresses more
than the allowed fraction. The floor is deliberately conservative — a
single-core container measurement — so the check catches "someone
reintroduced a global lock" (an integer-factor collapse), not runner
jitter.

Usage: check_fleet_floor.py BENCH_fleet_load.json [--floor FLOOR.json]
Exit status: 0 ok, 1 regression or malformed artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_KEYS = (
    "throughput_rps",
    "latency_p50_us",
    "latency_p99_us",
    "latency_p999_us",
    "requests_sent",
    "replays",
    "shed",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path,
                        help="BENCH_fleet_load.json from the smoke run")
    parser.add_argument("--floor", type=Path,
                        default=Path(__file__).with_name(
                            "fleet_load_floor.json"))
    args = parser.parse_args()

    try:
        artifact = json.loads(args.artifact.read_text())
        floor = json.loads(args.floor.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_fleet_floor: cannot read inputs: {err}",
              file=sys.stderr)
        return 1

    counters = artifact.get("counters", {})
    missing = [key for key in REQUIRED_KEYS if key not in counters]
    if artifact.get("bench") != "fleet_load" or missing:
        print(f"check_fleet_floor: malformed artifact "
              f"(bench={artifact.get('bench')!r}, missing={missing})",
              file=sys.stderr)
        return 1

    throughput = float(counters["throughput_rps"])
    baseline = float(floor["throughput_rps"])
    tolerance = float(floor.get("allowed_regression", 0.30))
    minimum = baseline * (1.0 - tolerance)

    print(f"throughput {throughput:.0f} req/s "
          f"(floor {baseline:.0f}, minimum after {tolerance:.0%} "
          f"tolerance: {minimum:.0f})")
    if throughput < minimum:
        print(f"check_fleet_floor: REGRESSION — {throughput:.0f} req/s is "
              f"more than {tolerance:.0%} below the {baseline:.0f} req/s "
              f"floor", file=sys.stderr)
        return 1
    print("check_fleet_floor: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
