#!/usr/bin/env python3
"""Regression floor check for the fleet_load bench artifact.

Compares the smoke run's throughput against the checked-in floor
(tools/bench/fleet_load_floor.json) and fails when it regresses more
than the allowed fraction. The floor is deliberately conservative — a
single-core container measurement — so the check catches "someone
reintroduced a global lock" (an integer-factor collapse), not runner
jitter.

Usage: check_fleet_floor.py BENCH_fleet_load.json [--floor FLOOR.json]
Exit status: 0 ok, 1 regression or malformed artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_KEYS = (
    "throughput_rps",
    "latency_p50_us",
    "latency_p99_us",
    "latency_p999_us",
    "requests_sent",
    "replays",
    "shed",
    "session.handshakes_per_sec",
    "session.rehandshakes",
    "session.counter_rejections",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path,
                        help="BENCH_fleet_load.json from the smoke run")
    parser.add_argument("--floor", type=Path,
                        default=Path(__file__).with_name(
                            "fleet_load_floor.json"))
    args = parser.parse_args()

    try:
        artifact = json.loads(args.artifact.read_text())
        floor = json.loads(args.floor.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_fleet_floor: cannot read inputs: {err}",
              file=sys.stderr)
        return 1

    counters = artifact.get("counters", {})
    missing = [key for key in REQUIRED_KEYS if key not in counters]
    if artifact.get("bench") != "fleet_load" or missing:
        print(f"check_fleet_floor: malformed artifact "
              f"(bench={artifact.get('bench')!r}, missing={missing})",
              file=sys.stderr)
        return 1

    tolerance = float(floor.get("allowed_regression", 0.30))
    floors = (
        ("throughput_rps", "throughput_rps", "req/s"),
        ("session.handshakes_per_sec", "session_handshakes_per_sec",
         "handshakes/s"),
    )
    failed = False
    for counter_key, floor_key, unit in floors:
        measured = float(counters[counter_key])
        baseline = float(floor[floor_key])
        minimum = baseline * (1.0 - tolerance)
        print(f"{counter_key} {measured:.0f} {unit} "
              f"(floor {baseline:.0f}, minimum after {tolerance:.0%} "
              f"tolerance: {minimum:.0f})")
        if measured < minimum:
            print(f"check_fleet_floor: REGRESSION — {measured:.0f} {unit} "
                  f"is more than {tolerance:.0%} below the {baseline:.0f} "
                  f"{unit} floor for {counter_key}", file=sys.stderr)
            failed = True

    # The rekey storm must actually exercise its paths: rotations force
    # re-handshakes and the stale-counter replays must be rejected. Zero
    # here means the session plane silently stopped doing its job.
    for counter_key in ("session.rehandshakes", "session.counter_rejections"):
        if int(counters[counter_key]) == 0:
            print(f"check_fleet_floor: {counter_key} is 0 — the rekey "
                  f"storm exercised nothing", file=sys.stderr)
            failed = True

    if failed:
        return 1
    print("check_fleet_floor: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
